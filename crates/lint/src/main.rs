//! `tsg-lint` CLI: `cargo run -p tsg-lint [-- --root DIR --format json]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/configuration
//! error. The default root is found by ascending from the current
//! directory to the first ancestor holding both `Cargo.toml` and
//! `DESIGN.md` (the workspace root), so the tool runs correctly from
//! any subdirectory and from `cargo run`.

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Human,
    Json,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Human;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                _ => return usage("--format needs `human` or `json`"),
            },
            "--help" | "-h" => {
                println!(
                    "tsg-lint — workspace-invariant static analysis (DESIGN.md §17)\n\n\
                     USAGE: tsg-lint [--root DIR] [--format human|json]\n\n\
                     Rules: facade, ordering, ordering-contract, panic, index,\n\
                     fault-hook, pragma-syntax, pragma-unused.\n\
                     Exit codes: 0 clean, 1 violations, 2 configuration error."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!(
                "tsg-lint: no workspace root found (no ancestor with Cargo.toml + DESIGN.md); pass --root"
            );
            return ExitCode::from(2);
        }
    };

    match tsg_lint::analyze_workspace(&root) {
        Ok(report) => {
            match format {
                Format::Human => print!("{}", report.render_human()),
                Format::Json => print!("{}", report.render_json()),
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("tsg-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("tsg-lint: {msg} (see --help)");
    ExitCode::from(2)
}

fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("DESIGN.md").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
