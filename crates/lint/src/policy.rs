//! Which rules apply where. The scopes are deliberately hardcoded —
//! the policy *is* the project contract (DESIGN.md §17), and a lint
//! whose scope is configurable per-invocation can be quietly weakened.

/// Path-derived classification of one source file.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// `crates/<name>/…` → `<name>`; root `src/…` → `taxogram`;
    /// `examples/…` → `examples`.
    pub crate_name: String,
    /// Under a `tests/` or `benches/` directory (integration tests are
    /// exempt from every rule; the workspace walker skips them, but
    /// the fixture API can still classify such paths).
    pub is_test_path: bool,
    /// Under a `src/bin/` directory (process-boundary code: a panic is
    /// a visible CLI failure, not a silent worker hazard).
    pub is_bin: bool,
    pub is_example: bool,
}

pub fn classify(rel: &str) -> FileClass {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = match parts.first() {
        Some(&"crates") => parts.get(1).copied().unwrap_or("").to_string(),
        Some(&"src") => "taxogram".to_string(),
        Some(&"examples") => "examples".to_string(),
        _ => parts.first().copied().unwrap_or("").to_string(),
    };
    let is_test_path = parts
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "fixtures");
    let is_bin = rel.contains("src/bin/");
    FileClass {
        crate_name,
        is_test_path,
        is_bin,
        is_example: rel.starts_with("examples/"),
    }
}

/// Crates that *are* the concurrency layer or test infrastructure:
/// exempt from facade discipline and the ordering audit (`check`
/// implements the facade; `testkit`/`bench` are test/bench harnesses
/// whose threads never run in library context).
fn sync_layer_or_harness(crate_name: &str) -> bool {
    matches!(crate_name, "check" | "testkit" | "bench")
}

/// Library crates whose non-test code must keep panic-path hygiene.
/// `check`/`testkit` panic *by design* (assertion machinery that only
/// ever runs under tests); `bench` and `src/bin` are process-boundary
/// code where a panic is a loud, attributable failure.
fn panic_hygiene_exempt(crate_name: &str) -> bool {
    matches!(crate_name, "check" | "testkit" | "bench")
}

pub fn facade_in_scope(fc: &FileClass) -> bool {
    !fc.is_test_path && !fc.is_example && !sync_layer_or_harness(&fc.crate_name)
}

pub fn ordering_in_scope(fc: &FileClass) -> bool {
    facade_in_scope(fc)
}

pub fn panic_in_scope(fc: &FileClass) -> bool {
    !fc.is_test_path && !fc.is_example && !fc.is_bin && !panic_hygiene_exempt(&fc.crate_name)
}

pub fn index_in_scope(fc: &FileClass) -> bool {
    panic_in_scope(fc)
}

/// Fault-injection hooks may be referenced from tests, the testkit,
/// and bench code; everything else (including examples and the CLI) is
/// in scope for the containment rule. The defining crate is exempted
/// at the rule level, not here.
pub fn fault_hook_in_scope(fc: &FileClass) -> bool {
    !fc.is_test_path && !matches!(fc.crate_name.as_str(), "testkit" | "bench")
}
