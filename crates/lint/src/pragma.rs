//! Pragma parsing and coverage resolution.
//!
//! Grammar (one pragma per line comment; DESIGN.md §17 is normative):
//!
//! ```text
//! // tsg-lint: allow(<rule>) — <justification>
//! // tsg-lint: ordering(<CONTRACT-ID>) [— <note>]
//! ```
//!
//! where `<rule>` ∈ {`facade`, `panic`, `index`, `fault-hook`} and
//! `<CONTRACT-ID>` names a row of the DESIGN.md §12 atomics contract
//! table (`ORD-nn`). The justification separator is an em-dash, two
//! hyphens, or a single hyphen surrounded by spaces; `allow` pragmas
//! *must* carry a non-empty justification.
//!
//! Coverage:
//! - a pragma trailing code on the same line covers exactly that line;
//! - a standalone pragma line covers the next statement or item
//!   (through its matching `}` or terminating `;`);
//! - a standalone pragma appearing before the first code token of the
//!   file covers the whole file (used for kernel files whose indexing
//!   discipline is documented once).

use crate::lexer::{Comment, Lexed};
use crate::regions::{item_end, LineRange};

/// Which rule a pragma addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Directive {
    Allow(AllowRule),
    /// `ordering(ID)` — the ID is stored alongside.
    Ordering,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllowRule {
    Facade,
    Panic,
    Index,
    FaultHook,
}

impl AllowRule {
    pub fn name(self) -> &'static str {
        match self {
            AllowRule::Facade => "facade",
            AllowRule::Panic => "panic",
            AllowRule::Index => "index",
            AllowRule::FaultHook => "fault-hook",
        }
    }
}

/// A parsed pragma with its resolved coverage.
#[derive(Debug)]
pub struct Pragma {
    pub directive: Directive,
    /// Contract ID for `ordering(…)`; empty for `allow(…)`.
    pub contract_id: String,
    pub justification: String,
    pub line: u32,
    pub coverage: LineRange,
    /// Set when the pragma suppressed (or audited) at least one site.
    pub used: std::cell::Cell<bool>,
}

/// A comment that *looks like* a pragma but does not parse; surfaced as
/// a `pragma-syntax` violation so typos cannot silently disable rules.
#[derive(Debug)]
pub struct PragmaError {
    pub line: u32,
    pub message: String,
}

#[derive(Debug, Default)]
pub struct Pragmas {
    pub pragmas: Vec<Pragma>,
    pub errors: Vec<PragmaError>,
}

impl Pragmas {
    /// The pragma of the given allow-rule covering `line`, if any
    /// (first match wins; marks it used).
    pub fn allow_covering(&self, rule: AllowRule, line: u32) -> Option<&Pragma> {
        let p = self.pragmas.iter().find(|p| {
            p.directive == Directive::Allow(rule) && p.coverage.contains(line)
        })?;
        p.used.set(true);
        Some(p)
    }

    /// The `ordering(ID)` pragma covering `line`, if any (marks used).
    pub fn ordering_covering(&self, line: u32) -> Option<&Pragma> {
        let p = self
            .pragmas
            .iter()
            .find(|p| p.directive == Directive::Ordering && p.coverage.contains(line))?;
        p.used.set(true);
        Some(p)
    }
}

const MARKER: &str = "tsg-lint:";

/// Extract and resolve all pragmas in a lexed file.
pub fn collect(lx: &Lexed) -> Pragmas {
    let mut out = Pragmas::default();
    for c in &lx.comments {
        let trimmed = c.text.trim_start_matches(['/', '!']).trim();
        let Some(rest) = trimmed.strip_prefix(MARKER) else {
            continue;
        };
        match parse_body(rest.trim()) {
            Ok((directive, contract_id, justification)) => {
                let coverage = resolve_coverage(lx, c);
                out.pragmas.push(Pragma {
                    directive,
                    contract_id,
                    justification,
                    line: c.line,
                    coverage,
                    used: std::cell::Cell::new(false),
                });
            }
            Err(message) => out.errors.push(PragmaError {
                line: c.line,
                message,
            }),
        }
    }
    out
}

/// Parse `allow(rule) — just` / `ordering(ID) [— note]`.
fn parse_body(body: &str) -> Result<(Directive, String, String), String> {
    let (head, arg, tail) = split_call(body)?;
    match head {
        "allow" => {
            let rule = match arg {
                "facade" => AllowRule::Facade,
                "panic" => AllowRule::Panic,
                "index" => AllowRule::Index,
                "fault-hook" => AllowRule::FaultHook,
                other => {
                    return Err(format!(
                        "unknown allow-rule `{other}` (expected facade, panic, index, or fault-hook)"
                    ))
                }
            };
            let just = strip_separator(tail);
            if just.is_empty() {
                return Err(format!(
                    "allow({}) pragma is missing its justification (`— <why this site is exempt>`)",
                    rule.name()
                ));
            }
            Ok((Directive::Allow(rule), String::new(), just.to_string()))
        }
        "ordering" => {
            if arg.is_empty() || !arg.starts_with("ORD-") {
                return Err(format!(
                    "ordering pragma needs a DESIGN.md §12 contract ID (`ordering(ORD-nn)`), got `{arg}`"
                ));
            }
            Ok((
                Directive::Ordering,
                arg.to_string(),
                strip_separator(tail).to_string(),
            ))
        }
        other => Err(format!(
            "unknown directive `{other}` (expected `allow(…)` or `ordering(…)`)"
        )),
    }
}

/// Split `name(arg) tail` into its three parts.
fn split_call(body: &str) -> Result<(&str, &str, &str), String> {
    let open = body
        .find('(')
        .ok_or_else(|| "expected `directive(arg)`".to_string())?;
    let close = body
        .find(')')
        .ok_or_else(|| "unclosed `(` in pragma".to_string())?;
    if close < open {
        return Err("malformed pragma parentheses".to_string());
    }
    Ok((
        body[..open].trim(), // tsg-lint: allow(index) — open < close < body.len() established by the find calls above
        body[open + 1..close].trim(), // tsg-lint: allow(index) — open < close < body.len() established by the find calls above
        body[close + 1..].trim(), // tsg-lint: allow(index) — open < close < body.len() established by the find calls above
    ))
}

/// Drop a leading justification separator (em/en dash, `--`, ` - `, `:`).
fn strip_separator(tail: &str) -> &str {
    tail.trim_start_matches(['—', '–', '-', ':'] as [char; 4])
        .trim()
}

fn resolve_coverage(lx: &Lexed, c: &Comment) -> LineRange {
    if lx.code_before(c.line, c.col) {
        // Trailing pragma: the line it annotates.
        return LineRange {
            start: c.line,
            end: c.line,
        };
    }
    // Standalone: find the next code token.
    let next = lx.tokens.iter().position(|t| t.line > c.line);
    match next {
        Some(idx) => {
            if lx.tokens.iter().any(|t| t.line <= c.line) {
                let end = item_end(&lx.tokens, idx).unwrap_or(lx.tokens[idx].line);
                LineRange {
                    start: c.line,
                    end,
                }
            } else {
                // Nothing but comments above: file-level pragma.
                LineRange {
                    start: 1,
                    end: u32::MAX,
                }
            }
        }
        // Pragma at end of file covers nothing but itself.
        None => {
            if lx.tokens.is_empty() {
                LineRange {
                    start: 1,
                    end: u32::MAX,
                }
            } else {
                LineRange {
                    start: c.line,
                    end: c.line,
                }
            }
        }
    }
}
