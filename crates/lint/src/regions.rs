//! Test-region tracking and item-span resolution over the token stream.
//!
//! tsg-lint's rules exempt test code; "test code" is defined
//! lexically: any item annotated `#[test]` or `#[cfg(test)]` (including
//! `cfg(all(test, …))`/`cfg(any(test, …))` — any `cfg` whose token list
//! mentions `test` *not* under a `not(…)`), plus whole files carrying
//! the inner form `#![cfg(test)]`. The region spans from the
//! attribute's first line to the end of the item it decorates
//! (matching `}` or terminating `;`), so library code before and after
//! an embedded `mod tests` is still linted.

// tsg-lint: allow(index) — token indices come from the scanner's own enumerate loops and stay below tokens.len()

use crate::lexer::{Lexed, Tok, TokKind};

/// Inclusive 1-based line range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineRange {
    pub start: u32,
    pub end: u32,
}

impl LineRange {
    pub fn contains(&self, line: u32) -> bool {
        self.start <= line && line <= self.end
    }
}

/// The test regions of one file.
#[derive(Debug, Default)]
pub struct TestRegions {
    ranges: Vec<LineRange>,
    whole_file: bool,
}

impl TestRegions {
    pub fn contains(&self, line: u32) -> bool {
        self.whole_file || self.ranges.iter().any(|r| r.contains(line))
    }
}

/// Scan the token stream for test attributes and compute their spans.
pub fn test_regions(lx: &Lexed) -> TestRegions {
    let toks = &lx.tokens;
    let mut out = TestRegions::default();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct('#') {
            i += 1;
            continue;
        }
        let attr_line = toks[i].line;
        let mut j = i + 1;
        let inner = j < toks.len() && toks[j].is_punct('!');
        if inner {
            j += 1;
        }
        if j >= toks.len() || !toks[j].is_punct('[') {
            i += 1;
            continue;
        }
        let (content_start, after) = match bracket_span(toks, j) {
            Some(v) => v,
            None => break,
        };
        let is_test = attr_is_test(&toks[content_start..after - 1]);
        if is_test && inner {
            out.whole_file = true;
            return out;
        }
        if !is_test {
            i = after;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut k = after;
        while k < toks.len() && toks[k].is_punct('#') {
            let mut b = k + 1;
            if b < toks.len() && toks[b].is_punct('!') {
                b += 1;
            }
            match bracket_span(toks, b) {
                Some((_, next)) => k = next,
                None => break,
            }
        }
        let end = item_end(toks, k).unwrap_or(attr_line);
        out.ranges.push(LineRange {
            start: attr_line,
            end,
        });
        // Resume scanning *after* the attribute (not after the item):
        // a non-test item following this region may itself carry
        // attributes, and nested test attrs inside the region are
        // harmless duplicates.
        i = after;
    }
    out
}

/// With `toks[open]` being `[`, return (first content index, index one
/// past the closing `]`).
fn bracket_span(toks: &[Tok], open: usize) -> Option<(usize, usize)> {
    if open >= toks.len() || !toks[open].is_punct('[') {
        return None;
    }
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some((open + 1, k + 1));
                }
            }
            _ => {}
        }
    }
    None
}

/// Attribute content → is this a test attribute? True for `test` and
/// for `cfg(…)`/`cfg_attr(…)` whose argument list mentions ident
/// `test` with no `not` ident anywhere before it.
fn attr_is_test(content: &[Tok]) -> bool {
    let first = match content.first() {
        Some(t) if t.kind == TokKind::Ident => t.text.as_str(),
        _ => return false,
    };
    if first == "test" && content.len() == 1 {
        return true;
    }
    if first != "cfg" {
        return false;
    }
    let mut saw_not = false;
    for t in &content[1..] {
        if t.is_ident("not") {
            saw_not = true;
        }
        if t.is_ident("test") {
            return !saw_not;
        }
    }
    false
}

/// End line of the item/statement starting at `toks[start]`: consume
/// until a `;`, `,`, or closing `}` at nesting depth zero. Returns the
/// line of the terminating token.
pub fn item_end(toks: &[Tok], start: usize) -> Option<u32> {
    let mut depth = 0i32;
    for t in &toks[start..] {
        match t.kind {
            TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => {
                depth -= 1;
                if depth <= 0 {
                    return Some(t.line);
                }
            }
            TokKind::Punct(';') | TokKind::Punct(',') if depth == 0 => return Some(t.line),
            _ => {}
        }
    }
    toks.last().map(|t| t.line)
}
