//! Violation records and the two output formats (human diff-style,
//! machine-readable JSON). JSON is hand-rendered — the lint is
//! dependency-free by design — with full string escaping.

use std::fmt::Write as _;

/// Stable rule identifiers (the CI smoke greps for these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    Facade,
    Ordering,
    OrderingContract,
    Panic,
    Index,
    FaultHook,
    PragmaSyntax,
    PragmaUnused,
}

impl Rule {
    pub fn id(self) -> &'static str {
        match self {
            Rule::Facade => "facade",
            Rule::Ordering => "ordering",
            Rule::OrderingContract => "ordering-contract",
            Rule::Panic => "panic",
            Rule::Index => "index",
            Rule::FaultHook => "fault-hook",
            Rule::PragmaSyntax => "pragma-syntax",
            Rule::PragmaUnused => "pragma-unused",
        }
    }
}

/// One finding.
#[derive(Debug)]
pub struct Violation {
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    pub message: String,
    /// The offending source line, if available.
    pub snippet: String,
}

/// The full analysis result.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub files_scanned: usize,
    pub pragmas_seen: usize,
    pub contracts_defined: usize,
    pub contracts_referenced: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn sort(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    }

    /// Human diff-style rendering: `file:line: [rule] message` plus the
    /// offending line, indented like a diff hunk.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(
                out,
                "{}:{}: [{}] {}",
                v.file,
                v.line,
                v.rule.id(),
                v.message
            );
            if !v.snippet.is_empty() {
                let _ = writeln!(out, "    | {}", v.snippet.trim_end());
            }
        }
        let _ = writeln!(
            out,
            "tsg-lint: {} violation(s) in {} file(s) scanned ({} pragma(s), {}/{} contracts referenced)",
            self.violations.len(),
            self.files_scanned,
            self.pragmas_seen,
            self.contracts_referenced,
            self.contracts_defined,
        );
        out
    }

    /// Machine-readable rendering.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"rule\": ");
            json_string(&mut out, v.rule.id());
            out.push_str(", \"file\": ");
            json_string(&mut out, &v.file);
            let _ = write!(out, ", \"line\": {}", v.line);
            out.push_str(", \"message\": ");
            json_string(&mut out, &v.message);
            out.push_str(", \"snippet\": ");
            json_string(&mut out, v.snippet.trim_end());
            out.push('}');
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "],\n  \"summary\": {{\"violations\": {}, \"files_scanned\": {}, \"pragmas\": {}, \"contracts_defined\": {}, \"contracts_referenced\": {}}}\n}}\n",
            self.violations.len(),
            self.files_scanned,
            self.pragmas_seen,
            self.contracts_defined,
            self.contracts_referenced,
        );
        out
    }
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
