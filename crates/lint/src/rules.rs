//! The rule engine: four project-invariant rules plus pragma hygiene,
//! evaluated over lexed token streams (see DESIGN.md §17).
//!
//! 1. `facade` — no direct `std::sync`/`std::thread` outside the sync
//!    layer (`Arc`/`Weak` are exempt: the facade re-exports them from
//!    std verbatim even under `--cfg tsg_model`, so routing them adds
//!    no model coverage).
//! 2. `ordering` / `ordering-contract` — every non-`SeqCst` atomic
//!    `Ordering::` site carries `// tsg-lint: ordering(ORD-nn)` naming
//!    a live DESIGN.md §12 row; the row's Ordering column must mention
//!    the site's ordering, and rows no site references are stale.
//! 3. `panic` / `index` — `unwrap`/`expect`/`panic!`-family and
//!    slice/array indexing in non-test library code need justified
//!    `allow` pragmas.
//! 4. `fault-hook` — `#[doc(hidden)]` fault-injection hooks may only
//!    be referenced from their defining crate, `tests/`, `tsg-testkit`,
//!    and bench code.

use std::collections::{BTreeMap, BTreeSet};

use crate::design::ContractTable;
use crate::lexer::{self, Lexed, Tok, TokKind};
use crate::policy::{self, FileClass};
use crate::pragma::{self, AllowRule, Pragmas};
use crate::regions::{self, TestRegions};
use crate::report::{Report, Rule, Violation};

/// One source file prepared for analysis.
pub struct SourceFile {
    pub rel: String,
    pub class: FileClass,
    pub lines: Vec<String>,
    pub lexed: Lexed,
    pub tests: TestRegions,
    pub pragmas: Pragmas,
}

impl SourceFile {
    pub fn prepare(rel: String, source: &str) -> SourceFile {
        let lexed = lexer::lex(source);
        let tests = regions::test_regions(&lexed);
        let pragmas = pragma::collect(&lexed);
        SourceFile {
            class: policy::classify(&rel),
            rel,
            lines: source.lines().map(str::to_string).collect(),
            lexed,
            tests,
            pragmas,
        }
    }

    fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .cloned()
            .unwrap_or_default()
    }
}

const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Run every rule over the prepared files.
pub fn analyze(
    files: &[SourceFile],
    table: Option<&ContractTable>,
    design_rel: &str,
) -> Report {
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    let hooks = collect_fault_hooks(files);
    let mut referenced_ids: BTreeSet<String> = BTreeSet::new();

    for f in files {
        facade_rule(f, &mut report);
        ordering_rule(f, table, &mut referenced_ids, &mut report);
        panic_rule(f, &mut report);
        index_rule(f, &mut report);
        fault_hook_rule(f, &hooks, &mut report);
        pragma_hygiene(f, &mut report);
        report.pragmas_seen += f.pragmas.pragmas.len();
    }

    // Cross-file checks: unused pragmas and stale contract rows.
    for f in files {
        for p in &f.pragmas.pragmas {
            if !p.used.get() {
                report.violations.push(Violation {
                    rule: Rule::PragmaUnused,
                    file: f.rel.clone(),
                    line: p.line,
                    message: "pragma suppresses no site — remove it or move it next to the code it audits".to_string(),
                    snippet: f.snippet(p.line),
                });
            }
        }
    }
    if let Some(t) = table {
        report.contracts_defined = t.rows.len();
        report.contracts_referenced = referenced_ids.len();
        for (line, msg) in &t.problems {
            report.violations.push(Violation {
                rule: Rule::OrderingContract,
                file: design_rel.to_string(),
                line: *line,
                message: msg.clone(),
                snippet: String::new(),
            });
        }
        for row in &t.rows {
            if !referenced_ids.contains(&row.id) {
                report.violations.push(Violation {
                    rule: Rule::OrderingContract,
                    file: design_rel.to_string(),
                    line: row.line,
                    message: format!(
                        "stale contract row: no `Ordering::` site carries `tsg-lint: ordering({})`",
                        row.id
                    ),
                    snippet: String::new(),
                });
            }
        }
    }
    report.sort();
    report
}

/// In non-test code, is this token exempt because a test region covers
/// its line?
fn in_tests(f: &SourceFile, line: u32) -> bool {
    f.tests.contains(line)
}

// ---------------------------------------------------------------- facade

fn facade_rule(f: &SourceFile, report: &mut Report) {
    if !policy::facade_in_scope(&f.class) {
        return;
    }
    let toks = &f.lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        let is_std_root = toks
            .get(i)
            .is_some_and(|t| t.is_ident("std"))
            // `::std::…` and bare `std::…` both match; a preceding
            // ident (`my::std`) cannot occur for the std crate root.
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::PathSep);
        if !is_std_root {
            i += 1;
            continue;
        }
        let line = toks.get(i).map_or(0, |t| t.line);
        let module = toks.get(i + 2);
        let offenders = if module.is_some_and(|t| t.is_ident("thread")) {
            vec!["thread".to_string()]
        } else if module.is_some_and(|t| t.is_ident("sync")) {
            first_segments_after(toks, i + 3)
                .into_iter()
                .filter(|s| s != "Arc" && s != "Weak")
                .collect()
        } else {
            Vec::new()
        };
        i += 3;
        if offenders.is_empty() || in_tests(f, line) {
            continue;
        }
        if f.pragmas.allow_covering(AllowRule::Facade, line).is_some() {
            continue;
        }
        report.violations.push(Violation {
            rule: Rule::Facade,
            file: f.rel.clone(),
            line,
            message: format!(
                "direct std concurrency primitive ({}) outside the `taxogram_core::sync` facade — route through the facade or justify with `// tsg-lint: allow(facade) — …`",
                offenders
                    .iter()
                    .map(|s| format!("`std::sync::{s}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
                    .replace("`std::sync::thread`", "`std::thread`")
            ),
            snippet: f.snippet(line),
        });
    }
}

/// After `std::sync`, the first path segment(s) that follow: a single
/// ident for `std::sync::Mutex::new`, every brace-group entry head for
/// `use std::sync::{mpsc, Arc, atomic::AtomicU64}`. An empty result
/// means `use std::sync;` itself — returned as a pseudo-segment so the
/// wildcard import is flagged too.
fn first_segments_after(toks: &[Tok], at: usize) -> Vec<String> {
    if !toks.get(at).is_some_and(|t| t.kind == TokKind::PathSep) {
        // `use std::sync;` or `std::sync` as a bare path.
        return vec!["<module import>".to_string()];
    }
    match toks.get(at + 1) {
        Some(t) if t.kind == TokKind::Ident => vec![t.text.clone()],
        Some(t) if t.is_punct('{') => {
            let mut out = Vec::new();
            let mut depth = 0i32;
            let mut head_next = false;
            for tok in toks.iter().skip(at + 1) {
                match tok.kind {
                    TokKind::Punct('{') => {
                        depth += 1;
                        if depth == 1 {
                            head_next = true;
                        }
                    }
                    TokKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokKind::Punct(',') if depth == 1 => head_next = true,
                    TokKind::Ident if head_next => {
                        out.push(tok.text.clone());
                        head_next = false;
                    }
                    _ => {}
                }
            }
            out
        }
        Some(t) if t.is_punct('*') => vec!["*".to_string()],
        _ => Vec::new(),
    }
}

// -------------------------------------------------------------- ordering

fn ordering_rule(
    f: &SourceFile,
    table: Option<&ContractTable>,
    referenced: &mut BTreeSet<String>,
    report: &mut Report,
) {
    if !policy::ordering_in_scope(&f.class) {
        return;
    }
    let toks = &f.lexed.tokens;
    for i in 0..toks.len() {
        let Some(variant) = atomic_ordering_at(toks, i) else {
            continue;
        };
        let line = toks.get(i).map_or(0, |t| t.line);
        if in_tests(f, line) {
            continue;
        }
        let pragma = f.pragmas.ordering_covering(line);
        match pragma {
            None => {
                if variant != "SeqCst" {
                    report.violations.push(Violation {
                        rule: Rule::Ordering,
                        file: f.rel.clone(),
                        line,
                        message: format!(
                            "`Ordering::{variant}` without an audit pragma — name its DESIGN.md §12 contract with `// tsg-lint: ordering(ORD-nn)`"
                        ),
                        snippet: f.snippet(line),
                    });
                }
            }
            Some(p) => {
                referenced.insert(p.contract_id.clone());
                if let Some(t) = table {
                    match t.get(&p.contract_id) {
                        None => report.violations.push(Violation {
                            rule: Rule::OrderingContract,
                            file: f.rel.clone(),
                            line,
                            message: format!(
                                "pragma names `{}` but the DESIGN.md §12 table has no such contract row",
                                p.contract_id
                            ),
                            snippet: f.snippet(line),
                        }),
                        Some(row) => {
                            if !row.orderings.contains(variant) {
                                report.violations.push(Violation {
                                    rule: Rule::OrderingContract,
                                    file: f.rel.clone(),
                                    line,
                                    message: format!(
                                        "site uses `Ordering::{}` but contract {} documents `{}` — fix the site or the table",
                                        variant, p.contract_id, row.orderings
                                    ),
                                    snippet: f.snippet(line),
                                });
                            }
                        }
                    }
                }
            }
        }
    }
}

/// `Ordering :: <variant>` at token `i`? Returns the variant name.
/// The atomic variant set is disjoint from `cmp::Ordering`'s
/// (`Less`/`Equal`/`Greater`), so no type resolution is needed.
fn atomic_ordering_at(toks: &[Tok], i: usize) -> Option<&str> {
    if !toks.get(i).is_some_and(|t| t.is_ident("Ordering")) {
        return None;
    }
    if !toks.get(i + 1).is_some_and(|t| t.kind == TokKind::PathSep) {
        return None;
    }
    let v = toks.get(i + 2)?;
    if v.kind != TokKind::Ident {
        return None;
    }
    ATOMIC_ORDERINGS
        .iter()
        .find(|&&o| v.text == o)
        .copied()
}

// ----------------------------------------------------------------- panic

const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

fn panic_rule(f: &SourceFile, report: &mut Report) {
    if !policy::panic_in_scope(&f.class) {
        return;
    }
    let toks = &f.lexed.tokens;
    for i in 0..toks.len() {
        let Some(t) = toks.get(i) else { break };
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_method = PANIC_METHODS.contains(&t.text.as_str())
            && i > 0
            && toks.get(i - 1).is_some_and(|p| p.is_punct('.'));
        let is_macro = PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        if !is_method && !is_macro {
            continue;
        }
        if in_tests(f, t.line) {
            continue;
        }
        if f.pragmas.allow_covering(AllowRule::Panic, t.line).is_some() {
            continue;
        }
        let what = if is_method {
            format!("`.{}()`", t.text)
        } else {
            format!("`{}!`", t.text)
        };
        report.violations.push(Violation {
            rule: Rule::Panic,
            file: f.rel.clone(),
            line: t.line,
            message: format!(
                "{what} in non-test library code — return a `Result`, or justify with `// tsg-lint: allow(panic) — …` (worker panic-safety contract, DESIGN.md §10)"
            ),
            snippet: f.snippet(t.line),
        });
    }
}

// ----------------------------------------------------------------- index

/// Identifiers after which `[` opens an array literal / pattern / type,
/// not an index expression.
const NON_INDEX_PREV_KEYWORDS: [&str; 16] = [
    "let", "mut", "ref", "return", "break", "in", "as", "const", "static", "else", "move",
    "dyn", "impl", "for", "where", "match",
];

fn index_rule(f: &SourceFile, report: &mut Report) {
    if !policy::index_in_scope(&f.class) {
        return;
    }
    let toks = &f.lexed.tokens;
    for i in 1..toks.len() {
        if !toks.get(i).is_some_and(|t| t.is_punct('[')) {
            continue;
        }
        let Some(prev) = toks.get(i - 1) else { continue };
        let is_index_base = match prev.kind {
            TokKind::Ident => !NON_INDEX_PREV_KEYWORDS.contains(&prev.text.as_str()),
            TokKind::Punct(')') | TokKind::Punct(']') => true,
            _ => false,
        };
        if !is_index_base {
            continue;
        }
        let Some(t) = toks.get(i) else { continue };
        if in_tests(f, t.line) {
            continue;
        }
        if f.pragmas.allow_covering(AllowRule::Index, t.line).is_some() {
            continue;
        }
        report.violations.push(Violation {
            rule: Rule::Index,
            file: f.rel.clone(),
            line: t.line,
            message: "slice/array index can panic in non-test library code — use `.get(…)`, or justify the bounds discipline with `// tsg-lint: allow(index) — …`".to_string(),
            snippet: f.snippet(t.line),
        });
    }
}

// ------------------------------------------------------------ fault hooks

/// Hook name → crates allowed to reference it (its definers: every
/// crate that declares or re-exports it under `#[doc(hidden)]`).
type HookMap = BTreeMap<String, BTreeSet<String>>;

fn hook_name(name: &str) -> bool {
    let lc = name.to_ascii_lowercase();
    lc.contains("fault") && !lc.contains("default")
}

/// Pass 1: find `#[doc(hidden)]` items across all files and collect
/// fault-hook names (idents matching `fault`, excluding `default`).
fn collect_fault_hooks(files: &[SourceFile]) -> HookMap {
    let mut map = HookMap::new();
    for f in files {
        let toks = &f.lexed.tokens;
        let mut i = 0usize;
        while i < toks.len() {
            let Some(after) = doc_hidden_attr_end(toks, i) else {
                i += 1;
                continue;
            };
            // Skip any further stacked attributes.
            let mut k = after;
            while let Some(next) = doc_attr_like_end(toks, k) {
                k = next;
            }
            for name in declared_names(toks, k) {
                if hook_name(&name) {
                    map.entry(name)
                        .or_default()
                        .insert(f.class.crate_name.clone());
                }
            }
            i = after;
        }
    }
    map
}

/// If `toks[i]` starts a `#[doc(hidden)]` attribute, return the index
/// one past its closing `]`.
fn doc_hidden_attr_end(toks: &[Tok], i: usize) -> Option<usize> {
    if !toks.get(i).is_some_and(|t| t.is_punct('#')) {
        return None;
    }
    let open = if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
        i + 2
    } else {
        i + 1
    };
    if !toks.get(open).is_some_and(|t| t.is_punct('[')) {
        return None;
    }
    let mut depth = 0i32;
    let mut hidden = false;
    let mut doc = false;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return if doc && hidden { Some(k + 1) } else { None };
                }
            }
            TokKind::Ident if t.text == "doc" => doc = true,
            TokKind::Ident if t.text == "hidden" => hidden = true,
            _ => {}
        }
    }
    None
}

/// Any attribute at `toks[i]` (regardless of content): end index.
fn doc_attr_like_end(toks: &[Tok], i: usize) -> Option<usize> {
    if !toks.get(i).is_some_and(|t| t.is_punct('#')) {
        return None;
    }
    let open = if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
        i + 2
    } else {
        i + 1
    };
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k + 1);
                }
            }
            _ if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

const ITEM_KEYWORDS: [&str; 8] = ["fn", "struct", "enum", "mod", "trait", "type", "static", "const"];
const VIS_KEYWORDS: [&str; 6] = ["pub", "crate", "in", "super", "self", "unsafe"];

/// The name(s) declared by the item starting at `toks[k]`: the single
/// ident after `fn`/`struct`/… , or every ident in a `use` tree
/// (covering both path leaves and `as` renames, so a re-exporting
/// crate becomes a definer of both names).
fn declared_names(toks: &[Tok], k: usize) -> Vec<String> {
    let mut j = k;
    // Skip visibility / qualifiers, including `pub(crate)` groups.
    loop {
        match toks.get(j) {
            Some(t) if t.kind == TokKind::Ident && VIS_KEYWORDS.contains(&t.text.as_str()) => {
                j += 1;
            }
            Some(t) if t.is_punct('(') => {
                let mut depth = 0i32;
                let mut advanced = false;
                for (m, t2) in toks.iter().enumerate().skip(j) {
                    match t2.kind {
                        TokKind::Punct('(') => depth += 1,
                        TokKind::Punct(')') => {
                            depth -= 1;
                            if depth == 0 {
                                j = m + 1;
                                advanced = true;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                if !advanced {
                    return Vec::new();
                }
            }
            _ => break,
        }
    }
    match toks.get(j) {
        Some(t) if t.is_ident("use") => {
            let mut out = Vec::new();
            for t2 in toks.iter().skip(j + 1) {
                match t2.kind {
                    TokKind::Punct(';') => break,
                    TokKind::Ident => out.push(t2.text.clone()),
                    _ => {}
                }
            }
            out
        }
        Some(t) if t.kind == TokKind::Ident && ITEM_KEYWORDS.contains(&t.text.as_str()) => toks
            .get(j + 1)
            .filter(|n| n.kind == TokKind::Ident)
            .map(|n| vec![n.text.clone()])
            .unwrap_or_default(),
        _ => Vec::new(),
    }
}

fn fault_hook_rule(f: &SourceFile, hooks: &HookMap, report: &mut Report) {
    if !policy::fault_hook_in_scope(&f.class) || hooks.is_empty() {
        return;
    }
    for t in &f.lexed.tokens {
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some(definers) = hooks.get(&t.text) else {
            continue;
        };
        if definers.contains(&f.class.crate_name) {
            continue;
        }
        if in_tests(f, t.line) {
            continue;
        }
        if f.pragmas
            .allow_covering(AllowRule::FaultHook, t.line)
            .is_some()
        {
            continue;
        }
        report.violations.push(Violation {
            rule: Rule::FaultHook,
            file: f.rel.clone(),
            line: t.line,
            message: format!(
                "fault-injection hook `{}` referenced outside its defining crate ({}) — hooks are for tests/, tsg-testkit, and bench code only",
                t.text,
                definers
                    .iter()
                    .map(String::as_str)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            snippet: f.snippet(t.line),
        });
    }
}

// -------------------------------------------------------- pragma hygiene

fn pragma_hygiene(f: &SourceFile, report: &mut Report) {
    for e in &f.pragmas.errors {
        report.violations.push(Violation {
            rule: Rule::PragmaSyntax,
            file: f.rel.clone(),
            line: e.line,
            message: e.message.clone(),
            snippet: f.snippet(e.line),
        });
    }
}
