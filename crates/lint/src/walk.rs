//! Workspace file discovery: every `.rs` file under `crates/*/src`,
//! the root `src/`, and `examples/`, in deterministic sorted order.
//!
//! Skipped subtrees: `target/` (build output), `shims/` (vendored
//! stand-ins for external crates — not project code), anything hidden,
//! and `tests/`/`benches/`/`fixtures/` directories (integration tests
//! are exempt from every rule, and the lint's own rule fixtures are
//! deliberate violations).

use std::fs;
use std::path::{Path, PathBuf};

const SKIP_DIRS: [&str; 5] = ["target", "shims", "tests", "benches", "fixtures"];

/// Collect `(workspace-relative path, file contents)` pairs.
pub fn collect_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    for top in ["crates", "src", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk_dir(&dir, root, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(files)
}

fn walk_dir(
    dir: &Path,
    root: &Path,
    out: &mut Vec<(String, String)>,
) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    for path in paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if name.starts_with('.') {
            continue;
        }
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            walk_dir(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let source = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("path {} outside root: {e}", path.display()))?
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, source));
        }
    }
    Ok(())
}
