//! Lexer edge cases: the analysis must classify comments and string
//! literals exactly, or the rules could be fooled by pragmas inside
//! strings, `Ordering::` mentions in comments, and `cfg(test)` regions
//! interleaved with library code.

use tsg_lint::{analyze_sources, Report};

fn single(path: &str, src: &str) -> Report {
    analyze_sources(&[(path, src)], None)
}

fn rule_ids(r: &Report) -> Vec<&'static str> {
    r.violations.iter().map(|v| v.rule.id()).collect()
}

#[test]
fn pragma_inside_a_string_literal_is_not_a_pragma() {
    let r = single(
        "crates/core/src/x.rs",
        "pub const S: &str = \"// tsg-lint: allow(panic) — not a pragma\";\n\
         pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    // The string contributes no pragma: nothing suppressed, nothing unused.
    assert_eq!(r.pragmas_seen, 0);
    assert_eq!(rule_ids(&r), ["panic"]);
    assert_eq!(r.violations[0].line, 2);
}

#[test]
fn pragma_inside_a_raw_string_with_hashes_is_not_a_pragma() {
    let r = single(
        "crates/core/src/x.rs",
        "pub const S: &str = r#\"quote \" then // tsg-lint: allow(index) — nope\"#;\n\
         pub fn f(v: &[u32]) -> u32 { v[0] }\n",
    );
    assert_eq!(r.pragmas_seen, 0);
    assert_eq!(rule_ids(&r), ["index"]);
    assert_eq!(r.violations[0].line, 2);
}

#[test]
fn pragma_inside_a_byte_string_with_escapes_is_not_a_pragma() {
    let r = single(
        "crates/core/src/x.rs",
        "pub const B: &[u8] = b\"escaped \\\" then // tsg-lint: allow(panic) — nope\";\n\
         pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    assert_eq!(r.pragmas_seen, 0);
    assert_eq!(rule_ids(&r), ["panic"]);
}

#[test]
fn ordering_mentions_in_comments_and_strings_are_not_sites() {
    let r = single(
        "crates/core/src/x.rs",
        "/* The block comment discusses Ordering::Relaxed at length. */\n\
         // And so does this line comment: Ordering::Acquire.\n\
         pub const DOC: &str = \"Ordering::Release\";\n\
         pub fn f() {}\n",
    );
    assert!(r.is_clean(), "{}", r.render_human());
}

#[test]
fn nested_block_comments_stay_comments() {
    let r = single(
        "crates/core/src/x.rs",
        "/* outer /* inner .unwrap() */ still comment: v[0].unwrap() */\n\
         pub fn ok() {}\n",
    );
    assert!(r.is_clean(), "{}", r.render_human());
}

#[test]
fn cfg_test_modules_interleaved_with_library_code() {
    let r = single(
        "crates/core/src/x.rs",
        "pub fn before(x: Option<u32>) -> u32 { x.unwrap() }\n\
         \n\
         #[cfg(test)]\n\
         mod tests {\n\
             #[test]\n\
             fn inside() { Some(1u32).unwrap(); }\n\
         }\n\
         \n\
         pub fn after(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    // Only the two library fns are flagged; the cfg(test) body is exempt.
    assert_eq!(rule_ids(&r), ["panic", "panic"]);
    let lines: Vec<u32> = r.violations.iter().map(|v| v.line).collect();
    assert_eq!(lines, [1, 9]);
}

#[test]
fn inner_cfg_test_attribute_exempts_the_whole_file() {
    let r = single(
        "crates/core/src/support.rs",
        "#![cfg(test)]\n\
         pub fn helper(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    assert!(r.is_clean(), "{}", r.render_human());
}

#[test]
fn lifetimes_are_not_mistaken_for_char_literals() {
    // A naive scanner treats `'a` as an unterminated char literal and
    // swallows the rest of the line, hiding the unwrap.
    let r = single(
        "crates/core/src/x.rs",
        "pub fn f<'a>(x: &'a Option<u32>) -> u32 { x.unwrap() }\n",
    );
    assert_eq!(rule_ids(&r), ["panic"]);
}

#[test]
fn char_literals_with_quotes_do_not_derail_the_scan() {
    let r = single(
        "crates/core/src/x.rs",
        "pub fn quote() -> char { '\"' }\n\
         pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    assert_eq!(rule_ids(&r), ["panic"]);
    assert_eq!(r.violations[0].line, 2);
}

#[test]
fn range_expressions_do_not_confuse_number_scanning() {
    let r = single(
        "crates/core/src/x.rs",
        "pub fn f(v: &[u32]) -> u32 {\n\
             let mut s = 0;\n\
             for i in 0..10 { s += v[i]; }\n\
             s\n\
         }\n",
    );
    assert_eq!(rule_ids(&r), ["index"]);
    assert_eq!(r.violations[0].line, 3);
}

#[test]
fn doc_comment_pragmas_cover_the_next_item() {
    let r = single(
        "crates/core/src/x.rs",
        "/// tsg-lint: allow(panic) — the invariant is stated on the field\n\
         pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    assert!(r.is_clean(), "{}", r.render_human());
    assert_eq!(r.pragmas_seen, 1);
}

#[test]
fn standalone_pragma_covers_the_following_statement_only() {
    let r = single(
        "crates/core/src/x.rs",
        "pub fn f(x: Option<u32>, y: Option<u32>) -> u32 {\n\
             // tsg-lint: allow(panic) — x was checked by the caller\n\
             let a = x.unwrap();\n\
             a + y.unwrap()\n\
         }\n",
    );
    // Line 3 is covered; line 4 is not.
    assert_eq!(rule_ids(&r), ["panic"]);
    assert_eq!(r.violations[0].line, 4);
}
