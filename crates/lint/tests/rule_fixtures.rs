//! Per-rule fixture tests: for every rule, a violating fixture and a
//! pragma'd-clean twin, exercised through the in-memory
//! [`tsg_lint::analyze_sources`] entry point so the fixtures drive the
//! exact same policy classification and rule engine as a real run.

use tsg_lint::{analyze_sources, Report};

/// Rule ids of all violations, in report order.
fn rule_ids(r: &Report) -> Vec<&'static str> {
    r.violations.iter().map(|v| v.rule.id()).collect()
}

fn single(path: &str, src: &str) -> Report {
    analyze_sources(&[(path, src)], None)
}

/// A minimal DESIGN.md with a well-formed §12 contract table.
const DESIGN: &str = "\
# Design

## 12. Atomic orderings

| ID | Site | Ordering | Contract |
|----|------|----------|----------|
| ORD-01 | ticket counter | Relaxed | RMW modification order gives unique tickets |
| ORD-02 | stop flag | Release/Acquire | publishes all prior writes to observers |
";

// ---------------------------------------------------------------- facade

#[test]
fn facade_flags_direct_std_sync() {
    let r = single("crates/core/src/x.rs", "use std::sync::Mutex;\n");
    assert_eq!(rule_ids(&r), ["facade"]);
    assert!(r.violations[0].message.contains("std::sync::Mutex"));
}

#[test]
fn facade_flags_std_thread() {
    let r = single(
        "crates/core/src/x.rs",
        "pub fn f() { std::thread::yield_now(); }\n",
    );
    assert_eq!(rule_ids(&r), ["facade"]);
    assert!(r.violations[0].message.contains("std::thread"));
}

#[test]
fn facade_pragma_with_justification_is_clean() {
    let r = single(
        "crates/core/src/x.rs",
        "use std::sync::Mutex; // tsg-lint: allow(facade) — leaf lock, never held across facade calls\n",
    );
    assert!(r.is_clean(), "{}", r.render_human());
    assert_eq!(r.pragmas_seen, 1);
}

#[test]
fn facade_exempts_arc_and_weak() {
    let r = single(
        "crates/core/src/x.rs",
        "use std::sync::Arc;\nuse std::sync::Weak;\n",
    );
    assert!(r.is_clean(), "{}", r.render_human());
}

#[test]
fn facade_flags_only_non_arc_entries_of_a_use_tree() {
    let r = single(
        "crates/core/src/x.rs",
        "use std::sync::{Arc, Mutex, atomic::AtomicU64};\n",
    );
    assert_eq!(rule_ids(&r), ["facade"]);
    let msg = &r.violations[0].message;
    assert!(msg.contains("Mutex") && msg.contains("atomic"), "{msg}");
    assert!(!msg.contains("Arc"), "{msg}");
}

#[test]
fn facade_exempts_the_sync_layer_and_harnesses() {
    for path in [
        "crates/check/src/x.rs",
        "crates/testkit/src/x.rs",
        "crates/bench/src/x.rs",
    ] {
        let r = single(path, "use std::sync::Mutex;\n");
        assert!(r.is_clean(), "{path}: {}", r.render_human());
    }
}

// -------------------------------------------------------------- ordering

#[test]
fn ordering_flags_unaudited_relaxed() {
    let r = analyze_sources(
        &[(
            "crates/core/src/x.rs",
            "pub fn f(a: &AtomicUsize) { a.load(Ordering::Relaxed); } // tsg-lint: ordering(ORD-01)\n\
             pub fn g(b: &AtomicBool) { b.store(true, Ordering::Release); }\n",
        )],
        Some(DESIGN),
    );
    // g's Release is unaudited; ORD-02 is never referenced → stale.
    // (Report order is by file, and "DESIGN.md" sorts before "crates/…".)
    assert_eq!(rule_ids(&r), ["ordering-contract", "ordering"]);
    assert!(r.violations[0].message.contains("stale contract row"));
    assert_eq!(r.violations[0].file, "DESIGN.md");
}

#[test]
fn ordering_audited_sites_and_live_rows_are_clean() {
    let r = analyze_sources(
        &[(
            "crates/core/src/x.rs",
            "pub fn f(a: &AtomicUsize) { a.fetch_add(1, Ordering::Relaxed); } // tsg-lint: ordering(ORD-01)\n\
             pub fn g(b: &AtomicBool) { b.store(true, Ordering::Release); } // tsg-lint: ordering(ORD-02)\n",
        )],
        Some(DESIGN),
    );
    assert!(r.is_clean(), "{}", r.render_human());
    assert_eq!((r.contracts_defined, r.contracts_referenced), (2, 2));
}

#[test]
fn ordering_pragma_naming_unknown_contract_is_flagged() {
    let r = analyze_sources(
        &[(
            "crates/core/src/x.rs",
            "pub fn f(a: &AtomicUsize) { a.load(Ordering::Relaxed); } // tsg-lint: ordering(ORD-99)\n\
             pub fn g(b: &AtomicBool) { b.store(true, Ordering::Release); } // tsg-lint: ordering(ORD-01)\n\
             pub fn h(b: &AtomicBool) { b.store(true, Ordering::Release); } // tsg-lint: ordering(ORD-02)\n",
        )],
        Some(DESIGN),
    );
    let ids = rule_ids(&r);
    assert!(ids.contains(&"ordering-contract"), "{}", r.render_human());
    assert!(r.violations.iter().any(|v| v.message.contains("ORD-99")));
    // g's Release does not match ORD-01's documented Relaxed either.
    assert!(r
        .violations
        .iter()
        .any(|v| v.message.contains("documents `Relaxed`")));
}

#[test]
fn seqcst_needs_no_pragma() {
    let r = single(
        "crates/core/src/x.rs",
        "pub fn f(a: &AtomicUsize) { a.load(Ordering::SeqCst); }\n",
    );
    assert!(r.is_clean(), "{}", r.render_human());
}

#[test]
fn cmp_ordering_variants_are_not_atomic_sites() {
    let r = single(
        "crates/core/src/x.rs",
        "pub fn f(a: u32, b: u32) -> Ordering {\n\
             if a < b { Ordering::Less } else { Ordering::Greater }\n\
         }\n",
    );
    assert!(r.is_clean(), "{}", r.render_human());
}

// ----------------------------------------------------------------- panic

#[test]
fn panic_flags_unwrap_expect_and_macros() {
    let r = single(
        "crates/core/src/x.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
         pub fn g(x: Option<u32>) -> u32 { x.expect(\"present\") }\n\
         pub fn h() { panic!(\"boom\"); }\n",
    );
    assert_eq!(rule_ids(&r), ["panic", "panic", "panic"]);
}

#[test]
fn panic_pragma_and_test_regions_are_clean() {
    let r = single(
        "crates/core/src/x.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() } // tsg-lint: allow(panic) — caller checked is_some\n\
         #[cfg(test)]\n\
         mod tests {\n\
             #[test]\n\
             fn t() { Some(1u32).unwrap(); }\n\
         }\n",
    );
    assert!(r.is_clean(), "{}", r.render_human());
}

#[test]
fn panic_exempts_integration_tests_bins_and_examples() {
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    for path in [
        "crates/core/tests/t.rs",
        "src/bin/tool.rs",
        "examples/demo.rs",
    ] {
        let r = single(path, src);
        assert!(r.is_clean(), "{path}: {}", r.render_human());
    }
}

// ----------------------------------------------------------------- index

#[test]
fn index_flags_slice_indexing() {
    let r = single(
        "crates/core/src/x.rs",
        "pub fn f(v: &[u32]) -> u32 { v[0] }\n",
    );
    assert_eq!(rule_ids(&r), ["index"]);
}

#[test]
fn index_pragma_is_clean_and_array_literals_are_not_indexing() {
    let r = single(
        "crates/core/src/x.rs",
        "pub fn f(v: &[u32]) -> u32 { v[0] } // tsg-lint: allow(index) — caller guarantees nonempty\n\
         pub fn g() -> [u32; 4] { [0u32; 4] }\n",
    );
    assert!(r.is_clean(), "{}", r.render_human());
}

#[test]
fn file_level_index_pragma_covers_the_whole_file() {
    let r = single(
        "crates/core/src/x.rs",
        "//! Kernel file.\n\
         \n\
         // tsg-lint: allow(index) — cursors bounded by stored cardinalities\n\
         \n\
         pub fn f(v: &[u32]) -> u32 { v[0] }\n\
         pub fn g(v: &[u32]) -> u32 { v[1] }\n",
    );
    assert!(r.is_clean(), "{}", r.render_human());
}

// ------------------------------------------------------------ fault hooks

const HOOK_DEF: &str = "#[doc(hidden)]\npub fn mine_with_faults(n: u32) -> u32 { n }\n";

#[test]
fn fault_hook_flags_cross_crate_reference() {
    let r = analyze_sources(
        &[
            ("crates/gspan/src/hooks.rs", HOOK_DEF),
            (
                "crates/core/src/x.rs",
                "pub fn f() -> u32 { tsg_gspan::mine_with_faults(1) }\n",
            ),
        ],
        None,
    );
    assert_eq!(rule_ids(&r), ["fault-hook"]);
    assert_eq!(r.violations[0].file, "crates/core/src/x.rs");
    assert!(r.violations[0].message.contains("mine_with_faults"));
}

#[test]
fn fault_hook_allows_definer_testkit_tests_and_pragmas() {
    let defining_crate = ("crates/gspan/src/hooks.rs", HOOK_DEF);
    for (path, src) in [
        // Same crate as the definition.
        (
            "crates/gspan/src/other.rs",
            "pub fn f() -> u32 { crate::hooks::mine_with_faults(1) }\n",
        ),
        // The testkit.
        (
            "crates/testkit/src/x.rs",
            "pub fn f() -> u32 { tsg_gspan::mine_with_faults(1) }\n",
        ),
        // Integration tests.
        (
            "crates/core/tests/t.rs",
            "fn f() -> u32 { tsg_gspan::mine_with_faults(1) }\n",
        ),
        // A justified conduit.
        (
            "crates/core/src/x.rs",
            "pub fn f() -> u32 { tsg_gspan::mine_with_faults(1) } // tsg-lint: allow(fault-hook) — sanctioned conduit for the scheduler's fault tests\n",
        ),
    ] {
        let r = analyze_sources(&[defining_crate, (path, src)], None);
        assert!(r.is_clean(), "{path}: {}", r.render_human());
    }
}

#[test]
fn doc_hidden_reexport_makes_the_reexporter_a_definer() {
    let r = analyze_sources(
        &[
            ("crates/gspan/src/hooks.rs", HOOK_DEF),
            (
                "crates/core/src/lib.rs",
                "#[doc(hidden)]\npub use tsg_gspan::mine_with_faults as core_faults;\n",
            ),
        ],
        None,
    );
    assert!(r.is_clean(), "{}", r.render_human());
}

// -------------------------------------------------------- pragma hygiene

#[test]
fn allow_pragma_without_justification_is_a_syntax_violation() {
    let r = single(
        "crates/core/src/x.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() } // tsg-lint: allow(panic)\n",
    );
    let ids = rule_ids(&r);
    assert!(ids.contains(&"pragma-syntax"), "{}", r.render_human());
    // The malformed pragma suppresses nothing: the site stays flagged.
    assert!(ids.contains(&"panic"), "{}", r.render_human());
}

#[test]
fn unknown_directive_is_a_syntax_violation() {
    let r = single(
        "crates/core/src/x.rs",
        "// tsg-lint: frobnicate(everything) — please\npub fn f() {}\n",
    );
    assert_eq!(rule_ids(&r), ["pragma-syntax"]);
}

#[test]
fn pragma_suppressing_nothing_is_flagged_unused() {
    let r = single(
        "crates/core/src/x.rs",
        "pub fn f() {} // tsg-lint: allow(panic) — covers nothing\n",
    );
    assert_eq!(rule_ids(&r), ["pragma-unused"]);
}
