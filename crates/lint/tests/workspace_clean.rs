//! The self-run gate: the live workspace must be lint-clean. This is
//! the test that makes tsg-lint a *workspace invariant* rather than an
//! optional tool — `cargo test` fails the moment an unannotated
//! violation or a stale §12 contract row lands.

use std::path::PathBuf;

#[test]
fn live_workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = tsg_lint::analyze_workspace(&root).expect("workspace analyzable");
    assert!(
        report.is_clean(),
        "tsg-lint found violations in the live workspace:\n{}",
        report.render_human()
    );
    // Every §12 contract row is referenced by some audited site, and
    // every audited site found its row (is_clean covers the latter).
    assert_eq!(
        report.contracts_referenced, report.contracts_defined,
        "stale or unreferenced §12 contract rows"
    );
    // Sanity: the walker actually saw the workspace, not an empty dir.
    assert!(report.files_scanned > 50, "only {} files scanned", report.files_scanned);
    assert!(report.pragmas_seen > 100, "only {} pragmas seen", report.pragmas_seen);
}
