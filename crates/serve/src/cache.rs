//! The θ-keyed result cache.
//!
//! # Soundness argument
//!
//! Generalized-frequency is a pure threshold filter: the frequent
//! pattern set at θ′ is by definition `{p : sup(p) ≥ ⌈θ′·|D|⌉}`, and a
//! pattern is *over-generalized* iff some specialization has **equal**
//! support — a property that never mentions θ. An equally-frequent
//! specialization is therefore frequent at θ′ exactly when the pattern
//! itself is, so minimality (non-over-generalization) is
//! θ-independent for every pattern above threshold. Hence for θ′ ≥ θ:
//!
//! ```text
//! P(θ′)  =  { p ∈ P(θ) : sup(p) ≥ ⌈θ′·|D|⌉ }
//! ```
//!
//! and since every engine emits patterns in one canonical,
//! support-independent order (classes in canonical DFS-code pre-order,
//! members in structural enumeration order — the θ-monotonicity
//! metamorphic relation of `tsg-testkit` checks the subset direction on
//! every engine), filtering a cached θ run by the θ′ support floor
//! reproduces the fresh θ′ run *byte-identically*. The serve crate's
//! `cache_soundness` suite proptests exactly that, comparing the wire
//! rendering of both sides.
//!
//! # Policy
//!
//! * Only **complete** runs are cached — a budget- or deadline-tripped
//!   partial prefix is truthful but not the full θ answer, and filtering
//!   it would silently under-report. The server enforces this; the cache
//!   also asserts it.
//! * Entries are keyed by the full non-θ configuration
//!   ([`ConfigKey`]); a lookup with a different `max_edges` or
//!   enhancement set never matches.
//! * A run at θ subsumes every cached run at θ″ ≥ θ with the same key,
//!   so inserts drop subsumed entries and skip self-subsumed ones.
//! * Capacity is a simple entry cap with least-recently-used eviction;
//!   the resident sets are pattern lists, small next to the database.

use std::sync::Arc;
use std::sync::Mutex; // tsg-lint: allow(facade) — serve is std-only-threaded by design (DESIGN.md §16); the cache lock is leaf-level, no cross-lock protocol to model-check
use taxogram_core::{MiningResult, Pattern, Termination};

/// Everything about a mining request that changes the answer *except* θ.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfigKey {
    /// Pattern-size cap in edges.
    pub max_edges: Option<usize>,
    /// Baseline (no-enhancements) configuration.
    pub baseline: bool,
}

#[derive(Debug)]
struct Entry {
    key: ConfigKey,
    theta: f64,
    run: Arc<MiningResult>,
    /// The cached run's own termination report, echoed on hits.
    termination: Termination,
    /// Monotone recency stamp for LRU eviction.
    used: u64,
}

/// What [`ResultCache::lookup`] hands back: the cached run, the θ it was
/// mined at, and the **real** [`Termination`] of that run — a hit echoes
/// the cached run's report instead of fabricating one, keeping the
/// protocol's truthful-termination claim honest.
#[derive(Clone, Debug)]
pub struct CacheHit {
    /// The cached complete run.
    pub run: Arc<MiningResult>,
    /// The θ the run was mined at (≤ the query θ).
    pub theta: f64,
    /// The cached run's termination report.
    pub termination: Termination,
}

/// A bounded, thread-safe θ-keyed cache of complete mining runs.
#[derive(Debug)]
pub struct ResultCache {
    entries: Mutex<(Vec<Entry>, u64)>,
    capacity: usize,
}

impl ResultCache {
    /// A cache holding at most `capacity` runs; zero disables caching.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            entries: Mutex::new((Vec::new(), 0)),
            capacity,
        }
    }

    /// Whether caching is disabled.
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Finds the best cached run able to answer a query at `theta`: the
    /// entry with the same key and the **largest** cached θ ≤ `theta`
    /// (fewest patterns to filter through).
    pub fn lookup(&self, key: &ConfigKey, theta: f64) -> Option<CacheHit> {
        let mut guard = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let (entries, clock) = &mut *guard;
        *clock += 1;
        let now = *clock;
        let best = entries
            .iter_mut()
            .filter(|e| e.key == *key && e.theta <= theta)
            .max_by(|a, b| a.theta.partial_cmp(&b.theta).expect("cached θ is finite"))?; // tsg-lint: allow(panic) — cached theta values are validated finite at admission
        best.used = now;
        Some(CacheHit {
            run: Arc::clone(&best.run),
            theta: best.theta,
            termination: best.termination.clone(),
        })
    }

    /// Caches a **complete** run mined at `theta`, together with its
    /// own `termination` report. Subsumed entries (same key, θ″ ≥ θ)
    /// are dropped; if an entry already subsumes this run, the insert
    /// is a no-op.
    pub fn insert(
        &self,
        key: ConfigKey,
        theta: f64,
        run: Arc<MiningResult>,
        termination: Termination,
    ) {
        debug_assert!(termination.is_complete(), "only complete runs are cacheable");
        debug_assert!(theta.is_finite());
        if self.capacity == 0 {
            return;
        }
        let mut guard = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let (entries, clock) = &mut *guard;
        if entries.iter().any(|e| e.key == key && e.theta <= theta) {
            return;
        }
        entries.retain(|e| !(e.key == key && e.theta >= theta));
        *clock += 1;
        let used = *clock;
        entries.push(Entry {
            key,
            theta,
            run,
            termination,
            used,
        });
        while entries.len() > self.capacity {
            let lru = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.used)
                .map(|(i, _)| i)
                .expect("non-empty above capacity"); // tsg-lint: allow(panic) — entries is non-empty when above capacity
            entries.swap_remove(lru);
        }
    }

    /// Cached entry count (for stats reporting).
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).0.len()
    }

    /// Whether the cache currently holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Filters a cached run down to the patterns frequent at the (higher)
/// support floor `min_support_count`, preserving the engine's emission
/// order — by the module-level soundness argument, byte-identical to a
/// fresh mine at the corresponding θ′.
pub fn filter_run(run: &MiningResult, min_support_count: usize) -> Vec<Pattern> {
    run.patterns
        .iter()
        .filter(|p| p.support_count >= min_support_count)
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxogram_core::{MiningStats, TerminationReason};
    use tsg_graph::LabeledGraph;

    fn done() -> Termination {
        Termination {
            reason: TerminationReason::Completed,
            classes_finished: 1,
            classes_abandoned: 0,
            frontier: Vec::new(),
        }
    }

    fn run(pattern_supports: &[usize]) -> Arc<MiningResult> {
        Arc::new(MiningResult {
            patterns: pattern_supports
                .iter()
                .map(|&s| Pattern {
                    graph: LabeledGraph::with_nodes([tsg_graph::NodeLabel(0)]),
                    support_count: s,
                    support: s as f64 / 4.0,
                })
                .collect(),
            stats: MiningStats::default(),
            min_support_count: 1,
            database_size: 4,
        })
    }

    const KEY: ConfigKey = ConfigKey {
        max_edges: Some(3),
        baseline: false,
    };

    #[test]
    fn lookup_prefers_the_largest_covering_theta() {
        let cache = ResultCache::new(4);
        cache.insert(KEY, 0.2, run(&[4, 3, 2, 1]), done());
        // 0.2 subsumes 0.5, so inserting 0.5 afterwards is a no-op…
        cache.insert(KEY, 0.5, run(&[4, 3]), done());
        assert_eq!(cache.len(), 1);
        let hit = cache.lookup(&KEY, 0.9).unwrap();
        assert_eq!(hit.theta, 0.2);
        assert_eq!(hit.run.patterns.len(), 4);
        assert!(hit.termination.is_complete());
        // …and a lower-θ insert replaces the subsumed 0.2 entry.
        cache.insert(KEY, 0.1, run(&[4, 3, 2, 1, 1]), done());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(&KEY, 0.2).unwrap().theta, 0.1);
        // A cached θ above the query θ can not answer it.
        assert!(cache.lookup(&KEY, 0.05).is_none());
    }

    #[test]
    fn different_configs_never_match() {
        let cache = ResultCache::new(4);
        cache.insert(KEY, 0.2, run(&[4]), done());
        let other_edges = ConfigKey {
            max_edges: Some(5),
            ..KEY
        };
        let other_cfg = ConfigKey {
            baseline: true,
            ..KEY
        };
        assert!(cache.lookup(&other_edges, 0.9).is_none());
        assert!(cache.lookup(&other_cfg, 0.9).is_none());
        assert!(cache.lookup(&KEY, 0.9).is_some());
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = ResultCache::new(2);
        let k = |e: usize| ConfigKey {
            max_edges: Some(e),
            baseline: false,
        };
        cache.insert(k(1), 0.5, run(&[1]), done());
        cache.insert(k(2), 0.5, run(&[1]), done());
        assert!(cache.lookup(&k(1), 0.5).is_some()); // refresh k(1)
        cache.insert(k(3), 0.5, run(&[1]), done());
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&k(2), 0.5).is_none(), "LRU entry evicted");
        assert!(cache.lookup(&k(1), 0.5).is_some());
        assert!(cache.lookup(&k(3), 0.5).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = ResultCache::new(0);
        assert!(cache.is_disabled());
        cache.insert(KEY, 0.2, run(&[4]), done());
        assert!(cache.is_empty());
        assert!(cache.lookup(&KEY, 0.9).is_none());
    }

    #[test]
    fn filter_preserves_order_and_applies_floor() {
        let r = run(&[4, 1, 3, 2, 1]);
        let f = filter_run(&r, 2);
        assert_eq!(
            f.iter().map(|p| p.support_count).collect::<Vec<_>>(),
            vec![4, 3, 2]
        );
    }
}
