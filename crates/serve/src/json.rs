//! A minimal JSON value, parser, and writer.
//!
//! The workspace's `serde` dependency is an offline no-op shim (see
//! `shims/README.md`), so the wire protocol carries its own JSON layer:
//! a recursive-descent parser with an explicit depth bound and a writer
//! that escapes exactly what RFC 8259 requires. Only what the protocol
//! needs is implemented — objects, arrays, strings, finite numbers,
//! booleans, null — and every parse failure carries a byte offset so a
//! malformed frame can be reported precisely.

use std::fmt::Write as _;

/// Maximum nesting depth accepted by [`parse`]. Requests are flat
/// objects; anything deeper than this is an attack or a bug, and
/// unbounded depth would let a hostile frame overflow the parser stack.
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite; the writer rejects NaN/∞).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys: last one wins on
    /// [`Json::get`] lookups is *not* the rule — first wins, see `get`).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it was noticed
/// at.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Object field lookup (first match). `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => render_number(*n, out),
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes `n` as a JSON number. Integers render without a fraction;
/// non-finite values (which JSON cannot represent) render as `null`
/// rather than producing an unparseable document.
fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Appends `s` as a quoted, escaped JSON string.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one complete JSON document from `text`, rejecting trailing
/// non-whitespace.
///
/// # Errors
/// Returns [`JsonError`] with a byte offset for malformed input, depth
/// past [`MAX_DEPTH`], or trailing garbage.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_owned(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) { // tsg-lint: allow(index) — pos is bounded by bytes.len() in the scanner loop
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate halves are accepted individually
                            // and replaced — the protocol never emits
                            // them, and U+FFFD is safer than rejecting.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..]; // tsg-lint: allow(index) — pos is bounded by bytes.len() in the scanner loop
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let c = s.chars().next().expect("peeked non-empty"); // tsg-lint: allow(panic) — the validated utf-8 remainder is non-empty after the peek
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]) // tsg-lint: allow(index) — start and pos are cursors bounded by bytes.len()
            .map_err(|_| self.err("bad number"))?;
        let n: f64 = text.parse().map_err(|_| JsonError {
            msg: format!("bad number {text:?}"),
            at: start,
        })?;
        if !n.is_finite() {
            return Err(JsonError {
                msg: format!("non-finite number {text:?}"),
                at: start,
            });
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_flat_objects() {
        let text = r#"{"op":"mine","theta":0.25,"max_edges":3,"deep":[1,2,{"x":null}],"ok":true}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("mine"));
        assert_eq!(v.get("theta").and_then(Json::as_f64), Some(0.25));
        assert_eq!(v.get("max_edges").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}f ü".into());
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
        assert!(rendered.contains("\\u0001"));
        assert_eq!(
            parse(r#""A\/""#).unwrap(),
            Json::Str("A/".into())
        );
    }

    #[test]
    fn rejects_malformed_input_with_offsets() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "01x", "\"unterminated",
            "{\"a\":1} trailing", "nan", "1e999",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(!err.msg.is_empty(), "{bad:?}");
        }
        assert_eq!(parse("{,}").unwrap_err().at, 1);
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = parse(&deep).unwrap_err();
        assert!(err.msg.contains("deep"), "{err}");
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        parse(&ok).unwrap();
    }

    #[test]
    fn numbers_render_integers_exactly() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(-2.5).render(), "-2.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(0.2).render(), "0.2");
    }

    #[test]
    fn first_key_wins_on_get() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
    }
}
