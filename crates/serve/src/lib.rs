//! Mining-as-a-service for taxonomy-superimposed graph mining.
//!
//! `tsg-serve` keeps one taxonomy + database resident and answers mining
//! queries over a line-delimited JSON TCP protocol, with every request
//! governed end-to-end:
//!
//! * **Admission control** — a bounded worker pool behind a bounded
//!   queue; a full queue answers `shed` with a backoff hint instead of
//!   queueing unboundedly or hanging.
//! * **Graceful degradation** — per-request deadlines and budgets map
//!   onto the core [`GovernOptions`] machinery, so a tripped limit
//!   returns a sound serial-prefix partial result with a truthful
//!   termination record, never a silent truncation.
//! * **θ-keyed result cache** — a complete run at θ answers any query at
//!   θ′ ≥ θ by support-filtering, byte-identically to a fresh mine (the
//!   [`cache`] module carries the proof; `tests/cache_soundness.rs`
//!   property-tests it).
//! * **Connection hardening** — frame-assembly deadlines (slow-loris),
//!   frame size caps, typed errors for malformed input, and mid-request
//!   disconnect detection that reclaims the mining worker via its
//!   cancel token.
//!
//! [`GovernOptions`]: taxogram_core::GovernOptions

pub mod cache;
pub mod json;
pub mod load;
pub mod protocol;
pub mod server;

pub use cache::{filter_run, CacheHit, ConfigKey, ResultCache};
pub use load::{run_load, LoadOptions, LoadReport};
pub use protocol::{
    error_response, parse_request, render_patterns, result_response, shed_response, CacheStatus,
    ErrorCode, MineRequest, Request,
};
pub use server::{DrainReport, ServeOptions, Server, ServerHandle, StatsSnapshot};
