//! Synthetic many-client load driver.
//!
//! Spawns `clients` threads, each opening one connection and issuing
//! `requests_per_client` mine requests back-to-back, honoring shed
//! backoff hints (capped, so a misbehaving server cannot stall the
//! driver). Records per-request latency and response classification,
//! and reduces them to the percentile summary the bench snapshot and
//! the CI serve stage publish.
//!
//! The driver is deliberately protocol-level — plain sockets and the
//! serve crate's own JSON reader — so it measures exactly what a real
//! client sees, queue wait and framing included.

use crate::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Load-run shape.
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Concurrent client connections.
    pub clients: usize,
    /// Mine requests issued per client.
    pub requests_per_client: usize,
    /// θ for every request.
    pub theta: f64,
    /// Optional per-request deadline forwarded on the wire (ms).
    pub time_limit_ms: Option<u64>,
    /// Send `"no_cache":true` so every request actually mines.
    pub no_cache: bool,
    /// Socket connect/read/write timeout.
    pub io_timeout: Duration,
    /// Cap on honored shed backoff sleeps.
    pub max_backoff: Duration,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            clients: 4,
            requests_per_client: 8,
            theta: 0.4,
            time_limit_ms: None,
            no_cache: false,
            io_timeout: Duration::from_secs(10),
            max_backoff: Duration::from_millis(50),
        }
    }
}

/// What the load run observed, reduced for reporting.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadReport {
    /// Requests written to sockets.
    pub sent: usize,
    /// `result` responses (complete terminations).
    pub ok: usize,
    /// `result` responses with a non-complete termination (truthful
    /// partials under deadline/budget/cancel).
    pub degraded: usize,
    /// `shed` responses.
    pub shed: usize,
    /// Typed `error` responses.
    pub errors: usize,
    /// Requests with no parseable response (disconnect / timeout).
    pub lost: usize,
    /// Latency percentiles over answered requests, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency, ms.
    pub p95_ms: f64,
    /// 99th percentile latency, ms.
    pub p99_ms: f64,
    /// Worst observed latency, ms.
    pub max_ms: f64,
    /// `shed / sent` (0 when nothing was sent).
    pub shed_rate: f64,
    /// Wall-clock duration of the whole run, ms.
    pub wall_ms: f64,
}

/// One client's raw observations.
#[derive(Default)]
struct ClientTally {
    sent: usize,
    ok: usize,
    degraded: usize,
    shed: usize,
    errors: usize,
    lost: usize,
    latencies_ms: Vec<f64>,
}

/// Runs the load shape against a live server and reduces the results.
pub fn run_load(addr: SocketAddr, opts: &LoadOptions) -> LoadReport {
    let started = Instant::now();
    let handles: Vec<_> = (0..opts.clients.max(1))
        .map(|i| {
            let opts = opts.clone();
            std::thread::Builder::new() // tsg-lint: allow(facade) — synthetic load driver: real client threads against real sockets, not engine concurrency
                .name(format!("tsg-load-client-{i}"))
                .spawn(move || client_loop(addr, &opts))
                .expect("spawn load client") // tsg-lint: allow(panic) — spawn failure at load-driver startup is a fatal harness error
        })
        .collect();
    let mut tallies = Vec::with_capacity(handles.len());
    for h in handles {
        if let Ok(t) = h.join() {
            tallies.push(t);
        }
    }
    reduce(&tallies, started.elapsed())
}

fn client_loop(addr: SocketAddr, opts: &LoadOptions) -> ClientTally {
    let mut tally = ClientTally::default();
    let Ok(stream) = TcpStream::connect_timeout(&addr, opts.io_timeout) else {
        tally.lost = opts.requests_per_client;
        return tally;
    };
    let _ = stream.set_read_timeout(Some(opts.io_timeout));
    let _ = stream.set_write_timeout(Some(opts.io_timeout));
    let Ok(read_half) = stream.try_clone() else {
        tally.lost = opts.requests_per_client;
        return tally;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    let frame = mine_frame(opts);
    for _ in 0..opts.requests_per_client {
        let sent_at = Instant::now();
        if writer.write_all(frame.as_bytes()).is_err() {
            tally.lost += 1;
            break;
        }
        tally.sent += 1;
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => {}
            _ => {
                tally.lost += 1;
                break;
            }
        }
        let elapsed_ms = sent_at.elapsed().as_secs_f64() * 1000.0;
        match classify(&line) {
            Response::Ok => {
                tally.ok += 1;
                tally.latencies_ms.push(elapsed_ms);
            }
            Response::Degraded => {
                tally.degraded += 1;
                tally.latencies_ms.push(elapsed_ms);
            }
            Response::Shed { retry_after_ms } => {
                tally.shed += 1;
                let backoff =
                    Duration::from_millis(retry_after_ms).min(opts.max_backoff);
                std::thread::sleep(backoff); // tsg-lint: allow(facade) — client-side shed backoff sleep in the load driver
            }
            Response::Error => tally.errors += 1,
            Response::Unparseable => {
                tally.lost += 1;
                break;
            }
        }
    }
    tally
}

enum Response {
    Ok,
    Degraded,
    Shed { retry_after_ms: u64 },
    Error,
    Unparseable,
}

fn classify(line: &str) -> Response {
    let Ok(v) = json::parse(line.trim_end()) else {
        return Response::Unparseable;
    };
    match v.get("type").and_then(Json::as_str) {
        Some("result") => {
            let complete = v
                .get("termination")
                .and_then(|t| t.get("complete"))
                .and_then(Json::as_bool)
                .unwrap_or(false);
            if complete {
                Response::Ok
            } else {
                Response::Degraded
            }
        }
        Some("shed") => Response::Shed {
            retry_after_ms: v
                .get("retry_after_ms")
                .and_then(Json::as_u64)
                .unwrap_or(0),
        },
        Some("error") => Response::Error,
        _ => Response::Unparseable,
    }
}

fn mine_frame(opts: &LoadOptions) -> String {
    let mut f = format!("{{\"op\":\"mine\",\"theta\":{}", opts.theta);
    if let Some(ms) = opts.time_limit_ms {
        f.push_str(&format!(",\"time_limit_ms\":{ms}"));
    }
    if opts.no_cache {
        f.push_str(",\"no_cache\":true");
    }
    f.push_str("}\n");
    f
}

fn reduce(tallies: &[ClientTally], wall: Duration) -> LoadReport {
    let mut report = LoadReport {
        wall_ms: wall.as_secs_f64() * 1000.0,
        ..LoadReport::default()
    };
    let mut latencies: Vec<f64> = Vec::new();
    for t in tallies {
        report.sent += t.sent;
        report.ok += t.ok;
        report.degraded += t.degraded;
        report.shed += t.shed;
        report.errors += t.errors;
        report.lost += t.lost;
        latencies.extend_from_slice(&t.latencies_ms);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency")); // tsg-lint: allow(panic) — latencies are measured finite durations
    report.p50_ms = percentile(&latencies, 50.0);
    report.p95_ms = percentile(&latencies, 95.0);
    report.p99_ms = percentile(&latencies, 99.0);
    report.max_ms = latencies.last().copied().unwrap_or(0.0);
    if report.sent > 0 {
        report.shed_rate = report.shed as f64 / report.sent as f64;
    }
    report
}

/// Nearest-rank percentile over an already-sorted slice (0 when empty).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] // tsg-lint: allow(index) — empty slice returned early above; rank clamped to last index
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 50.0), 51.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 95.0), 7.0);
    }

    #[test]
    fn classify_reads_the_wire_shapes() {
        assert!(matches!(
            classify("{\"type\":\"result\",\"termination\":{\"complete\":true}}"),
            Response::Ok
        ));
        assert!(matches!(
            classify("{\"type\":\"result\",\"termination\":{\"complete\":false}}"),
            Response::Degraded
        ));
        assert!(matches!(
            classify("{\"type\":\"shed\",\"retry_after_ms\":120}"),
            Response::Shed {
                retry_after_ms: 120
            }
        ));
        assert!(matches!(classify("{\"type\":\"error\"}"), Response::Error));
        assert!(matches!(classify("not json"), Response::Unparseable));
    }
}
