//! The `taxogram serve` wire protocol: JSON lines over TCP.
//!
//! One request per line, one response per line, UTF-8, `\n`-terminated.
//! Requests are flat JSON objects dispatched on `"op"`:
//!
//! ```text
//! {"op":"mine","id":"r1","theta":0.4,"max_edges":3,
//!  "time_limit_ms":500,"max_patterns":100,"max_memory_bytes":1000000,
//!  "baseline":false,"no_cache":false}
//! {"op":"ping"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses echo the request `id` (or `null`) and carry a `"type"`:
//!
//! * `"result"` — patterns plus the run's truthful [`Termination`]
//!   report. A budget- or deadline-tripped run still returns `result`
//!   with the sound serial-prefix partial pattern set and
//!   `termination.reason` naming what tripped — graceful degradation,
//!   never a dropped reply. `"cache"` is `"miss"`, `"hit"` (θ-filtered
//!   from a cached lower-θ run) or `"bypass"` (caching disabled or
//!   `no_cache` requested). A hit's `termination` echoes the cached
//!   run's own complete report — its class tallies describe the run
//!   that produced the answer. Budgets and deadlines govern *mining*
//!   resources, so a cache hit — which consumes none — may answer a
//!   budgeted request with the complete cached result rather than a
//!   partial; send `no_cache` to force a governed fresh run.
//! * `"shed"` — the server refused admission (worker queue full or too
//!   many connections); `retry_after_ms` is the backoff hint.
//! * `"error"` — a typed protocol error ([`ErrorCode`]): malformed JSON,
//!   oversized frame, bad request fields, a stalled (slow-loris) frame,
//!   or an internal mining error.
//! * `"pong"` / `"stats"` / `"shutdown-ack"` for the auxiliary ops.
//!
//! [`Termination`]: taxogram_core::Termination

use crate::json::{escape_into, Json};
use std::fmt::Write as _;
use std::time::Duration;
use taxogram_core::{Pattern, Termination, TerminationReason};

/// Ceiling on `time_limit_ms` accepted in a request before server-side
/// clamping (a year; anything larger is a unit mistake).
const MAX_REQUEST_TIME_LIMIT_MS: u64 = 365 * 24 * 3600 * 1000;

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// A governed mining query.
    Mine(MineRequest),
    /// Liveness probe.
    Ping,
    /// Server counters snapshot.
    Stats,
    /// Graceful drain-and-exit.
    Shutdown,
}

/// The `op: "mine"` request body.
#[derive(Clone, Debug, PartialEq)]
pub struct MineRequest {
    /// Client-chosen request id, echoed in the response.
    pub id: Option<String>,
    /// Support threshold θ ∈ [0, 1].
    pub theta: f64,
    /// Optional pattern-size cap in edges.
    pub max_edges: Option<usize>,
    /// Mine with the paper's baseline configuration (no enhancements).
    pub baseline: bool,
    /// Per-request deadline; the server clamps it to its own ceiling and
    /// counts queue wait against it.
    pub time_limit: Option<Duration>,
    /// Per-request emitted-pattern budget.
    pub max_patterns: Option<usize>,
    /// Per-request peak-resident-bytes budget.
    pub max_memory_bytes: Option<usize>,
    /// Skip the θ-keyed result cache for this request.
    pub no_cache: bool,
}

/// Typed protocol error codes, stable on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not valid JSON.
    MalformedJson,
    /// The frame exceeded the server's size cap.
    FrameTooLarge,
    /// A frame stalled mid-transmission past the read deadline.
    ReadStalled,
    /// Structurally valid JSON with invalid or missing fields.
    BadRequest,
    /// The server is draining and not accepting new work.
    ShuttingDown,
    /// The mining engine reported an error.
    Internal,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::MalformedJson => "malformed-json",
            ErrorCode::FrameTooLarge => "frame-too-large",
            ErrorCode::ReadStalled => "read-stalled",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
        }
    }
}

/// How a `result` response was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheStatus {
    /// Mined fresh; the run was (or could have been) cached.
    Miss,
    /// Answered by θ-filtering a cached lower-θ run.
    Hit,
    /// The cache was not consulted (disabled or `no_cache`).
    Bypass,
}

impl CacheStatus {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Miss => "miss",
            CacheStatus::Hit => "hit",
            CacheStatus::Bypass => "bypass",
        }
    }
}

/// Parses one frame into a [`Request`].
///
/// # Errors
/// `(code, message)` pairs ready for [`error_response`]; field problems
/// are [`ErrorCode::BadRequest`].
pub fn parse_request(frame: &str) -> Result<Request, (ErrorCode, String)> {
    let v = crate::json::parse(frame)
        .map_err(|e| (ErrorCode::MalformedJson, e.to_string()))?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| (ErrorCode::BadRequest, "missing \"op\" field".to_owned()))?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "mine" => parse_mine(&v).map(Request::Mine),
        other => Err((
            ErrorCode::BadRequest,
            format!("unknown op {other:?} (expected mine|ping|stats|shutdown)"),
        )),
    }
}

fn parse_mine(v: &Json) -> Result<MineRequest, (ErrorCode, String)> {
    let bad = |msg: &str| (ErrorCode::BadRequest, msg.to_owned());
    let id = match v.get("id") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => return Err(bad("\"id\" must be a string")),
    };
    let theta = v
        .get("theta")
        .and_then(Json::as_f64)
        .ok_or_else(|| bad("missing or non-numeric \"theta\""))?;
    if !(0.0..=1.0).contains(&theta) || theta.is_nan() {
        return Err(bad("\"theta\" must be in [0, 1]"));
    }
    let uint = |key: &str| -> Result<Option<u64>, (ErrorCode, String)> {
        match v.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(x) => x
                .as_u64()
                .map(Some)
                .ok_or_else(|| bad(&format!("\"{key}\" must be a non-negative integer"))),
        }
    };
    let flag = |key: &str| -> Result<bool, (ErrorCode, String)> {
        match v.get(key) {
            None | Some(Json::Null) => Ok(false),
            Some(x) => x
                .as_bool()
                .ok_or_else(|| bad(&format!("\"{key}\" must be a boolean"))),
        }
    };
    let time_limit = match uint("time_limit_ms")? {
        Some(ms) if ms > MAX_REQUEST_TIME_LIMIT_MS => {
            return Err(bad("\"time_limit_ms\" is absurdly large"))
        }
        Some(ms) => Some(Duration::from_millis(ms)),
        None => None,
    };
    Ok(MineRequest {
        id,
        theta,
        max_edges: uint("max_edges")?.map(|n| n as usize),
        baseline: flag("baseline")?,
        time_limit,
        max_patterns: uint("max_patterns")?.map(|n| n as usize),
        max_memory_bytes: uint("max_memory_bytes")?.map(|n| n as usize),
        no_cache: flag("no_cache")?,
    })
}

fn push_id(out: &mut String, id: Option<&str>) {
    out.push_str("\"id\":");
    match id {
        Some(id) => escape_into(id, out),
        None => out.push_str("null"),
    }
}

/// Renders the patterns array of a `result` response. Public because the
/// cache-soundness suite asserts *byte identity* of this exact rendering
/// between a θ-filtered cached run and a fresh mine.
pub fn render_patterns(patterns: &[Pattern]) -> String {
    let mut out = String::from("[");
    for (i, p) in patterns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"support_count\":{},\"labels\":[", p.support_count);
        for (j, l) in p.graph.labels().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", l.0);
        }
        out.push_str("],\"edges\":[");
        for (j, e) in p.graph.edges().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{},{}]", e.u, e.v, e.label.0);
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

fn reason_str(reason: &TerminationReason) -> String {
    match reason {
        TerminationReason::Completed => "completed".to_owned(),
        TerminationReason::Cancelled => "cancelled".to_owned(),
        TerminationReason::DeadlineExceeded => "deadline-exceeded".to_owned(),
        TerminationReason::BudgetExceeded { which } => format!("budget-exceeded:{which}"),
    }
}

/// Builds a `result` response line (without the trailing newline).
pub fn result_response(
    id: Option<&str>,
    patterns: &[Pattern],
    termination: &Termination,
    min_support_count: usize,
    database_size: usize,
    cache: CacheStatus,
    elapsed_ms: f64,
) -> String {
    let mut out = String::from("{");
    push_id(&mut out, id);
    let _ = write!(
        out,
        ",\"type\":\"result\",\"cache\":\"{}\",\"min_support_count\":{min_support_count},\"database_size\":{database_size},\"patterns\":",
        cache.as_str()
    );
    out.push_str(&render_patterns(patterns));
    let _ = write!(
        out,
        ",\"termination\":{{\"reason\":\"{}\",\"complete\":{},\"classes_finished\":{},\"classes_abandoned\":{}}}",
        reason_str(&termination.reason),
        termination.is_complete(),
        termination.classes_finished,
        termination.classes_abandoned,
    );
    let _ = write!(out, ",\"elapsed_ms\":{elapsed_ms:.3}}}");
    out
}

/// Builds a typed `error` response line.
pub fn error_response(id: Option<&str>, code: ErrorCode, message: &str) -> String {
    let mut out = String::from("{");
    push_id(&mut out, id);
    let _ = write!(out, ",\"type\":\"error\",\"code\":\"{}\",\"message\":", code.as_str());
    escape_into(message, &mut out);
    out.push('}');
    out
}

/// Builds a `shed` (admission refused) response line.
pub fn shed_response(id: Option<&str>, retry_after_ms: u64) -> String {
    let mut out = String::from("{");
    push_id(&mut out, id);
    let _ = write!(out, ",\"type\":\"shed\",\"retry_after_ms\":{retry_after_ms}}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_mine_request() {
        let r = parse_request(
            r#"{"op":"mine","id":"q7","theta":0.4,"max_edges":3,"time_limit_ms":250,
               "max_patterns":10,"max_memory_bytes":65536,"baseline":true,"no_cache":true}"#,
        )
        .unwrap();
        let Request::Mine(m) = r else { panic!("not mine") };
        assert_eq!(m.id.as_deref(), Some("q7"));
        assert_eq!(m.theta, 0.4);
        assert_eq!(m.max_edges, Some(3));
        assert_eq!(m.time_limit, Some(Duration::from_millis(250)));
        assert_eq!(m.max_patterns, Some(10));
        assert_eq!(m.max_memory_bytes, Some(65536));
        assert!(m.baseline && m.no_cache);
    }

    #[test]
    fn minimal_mine_request_defaults() {
        let Request::Mine(m) = parse_request(r#"{"op":"mine","theta":1}"#).unwrap() else {
            panic!("not mine")
        };
        assert_eq!(m.id, None);
        assert!(m.time_limit.is_none() && m.max_edges.is_none());
        assert!(!m.baseline && !m.no_cache);
    }

    #[test]
    fn auxiliary_ops_parse() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(parse_request(r#"{"op":"shutdown"}"#).unwrap(), Request::Shutdown);
    }

    #[test]
    fn rejects_bad_requests_with_typed_codes() {
        let cases = [
            ("{", ErrorCode::MalformedJson),
            ("[1,2]", ErrorCode::BadRequest),
            (r#"{"theta":0.4}"#, ErrorCode::BadRequest),
            (r#"{"op":"mine"}"#, ErrorCode::BadRequest),
            (r#"{"op":"mine","theta":1.5}"#, ErrorCode::BadRequest),
            (r#"{"op":"mine","theta":-0.1}"#, ErrorCode::BadRequest),
            (r#"{"op":"mine","theta":0.5,"max_edges":-2}"#, ErrorCode::BadRequest),
            (r#"{"op":"mine","theta":0.5,"id":7}"#, ErrorCode::BadRequest),
            (r#"{"op":"mine","theta":0.5,"no_cache":"yes"}"#, ErrorCode::BadRequest),
            (r#"{"op":"explode"}"#, ErrorCode::BadRequest),
            (
                r#"{"op":"mine","theta":0.5,"time_limit_ms":99999999999999999}"#,
                ErrorCode::BadRequest,
            ),
        ];
        for (frame, want) in cases {
            let (code, msg) = parse_request(frame).unwrap_err();
            assert_eq!(code, want, "{frame}: {msg}");
        }
    }

    #[test]
    fn responses_are_single_line_json() {
        let t = Termination {
            reason: TerminationReason::BudgetExceeded {
                which: taxogram_core::BudgetKind::Patterns,
            },
            classes_finished: 2,
            classes_abandoned: 1,
            frontier: vec![],
        };
        let r = result_response(Some("a\"b"), &[], &t, 2, 5, CacheStatus::Miss, 1.25);
        assert!(!r.contains('\n'));
        let v = crate::json::parse(&r).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("a\"b"));
        assert_eq!(v.get("type").and_then(Json::as_str), Some("result"));
        assert_eq!(
            v.get("termination").and_then(|t| t.get("reason")).and_then(Json::as_str),
            Some("budget-exceeded:patterns")
        );

        let e = error_response(None, ErrorCode::FrameTooLarge, "9 MB line");
        let v = crate::json::parse(&e).unwrap();
        assert_eq!(v.get("id"), Some(&Json::Null));
        assert_eq!(v.get("code").and_then(Json::as_str), Some("frame-too-large"));

        let s = shed_response(Some("x"), 120);
        let v = crate::json::parse(&s).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("shed"));
        assert_eq!(v.get("retry_after_ms").and_then(Json::as_u64), Some(120));
    }
}
