//! The resident mining server.
//!
//! One [`Server::bind`] call loads nothing — the caller passes the
//! already-loaded taxonomy and database — and starts three kinds of
//! threads:
//!
//! * an **accept loop** that refuses connections beyond
//!   [`ServeOptions::max_connections`] (with a `shed` line, never a
//!   silent drop);
//! * one **connection handler** per client, which frames JSON lines
//!   under a read deadline and size cap, parses and dispatches requests,
//!   and watches for mid-request disconnects;
//! * a fixed **worker pool** of [`ServeOptions::workers`] mining
//!   threads fed by a bounded queue of depth
//!   [`ServeOptions::queue_depth`].
//!
//! # Admission control and load shedding
//!
//! A mine request is admitted by pushing its job onto the bounded queue.
//! A full queue means the server is saturated: the handler immediately
//! answers `shed` with a `retry_after_ms` hint derived from the
//! observed mean service time and current queue depth — clients back
//! off, the server never builds an unbounded backlog, and in-flight
//! requests are unaffected.
//!
//! # Governance and graceful degradation
//!
//! Every admitted job runs under [`GovernOptions`]: the request's
//! deadline (clamped to [`ServeOptions::max_time_limit`], measured from
//! *enqueue* so queue wait counts against it), pattern and memory
//! budgets, and a per-request [`CancelToken`]. A tripped budget or
//! deadline returns the engine's sound serial-prefix partial result
//! with its truthful [`Termination`] — the response is still `result`,
//! with `termination.reason` naming the trip. A client whose socket
//! errors out mid-request (reset, aborted) trips its token; the worker
//! observes it at the next class admission and is reclaimed for other
//! requests. A mere read-side EOF is *not* a disconnect: one-shot
//! clients that half-close after sending still receive their response.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] (or a client `shutdown` op, or
//! [`ServerHandle::request_shutdown`]) drains: no new connections or
//! admissions, queued and running jobs finish under
//! [`ServeOptions::drain_deadline`], then any stragglers are cancelled
//! via their tokens (returning truthful partials), worker threads are
//! joined, and lingering sockets are force-closed. The drain report
//! says whether the stop was clean.
//!
//! [`Termination`]: taxogram_core::Termination

use crate::cache::{filter_run, ConfigKey, ResultCache};
use crate::protocol::{
    error_response, parse_request, shed_response, CacheStatus, ErrorCode, MineRequest, Request,
};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering}; // tsg-lint: allow(facade) — serve is std-only-threaded by design (DESIGN.md §16): real sockets/OS threads cannot run under the model runtime; orderings audited per-site below
use std::sync::{mpsc, Arc, Condvar, Mutex}; // tsg-lint: allow(facade) — same §16 carve-out: queue/condvar protocol exercised by the fault matrix, not the model checker
use std::thread::JoinHandle; // tsg-lint: allow(facade) — worker/accept threads are real OS threads joined at drain; §16
use std::time::{Duration, Instant};
use taxogram_core::{
    Budget, CancelToken, GovernOptions, MiningOutcome, MiningResult, MiningStats, Taxogram,
    TaxogramConfig, Termination, TerminationReason,
};
use tsg_graph::GraphDatabase;
use tsg_taxonomy::Taxonomy;

/// Server tuning knobs. The defaults suit an interactive deployment;
/// tests shrink the timeouts.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Mining worker threads (the concurrent-admission cap).
    pub workers: usize,
    /// Bounded job-queue depth; a full queue sheds.
    pub queue_depth: usize,
    /// Concurrent connection cap; excess connections get a `shed` line.
    pub max_connections: usize,
    /// Maximum request-line size in bytes.
    pub max_frame_bytes: usize,
    /// Deadline for assembling one frame (slow-loris bound) and for
    /// idling between frames.
    pub read_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// Ceiling on client-requested per-request deadlines.
    pub max_time_limit: Duration,
    /// Deadline applied to requests that ask for none (`None` = run
    /// unbounded).
    pub default_time_limit: Option<Duration>,
    /// How long shutdown waits for in-flight work before cancelling it.
    pub drain_deadline: Duration,
    /// θ-keyed result-cache capacity in entries; zero disables.
    pub cache_entries: usize,
    /// Floor for the shed `retry_after_ms` hint.
    pub shed_retry_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 2,
            queue_depth: 8,
            max_connections: 64,
            max_frame_bytes: 1 << 20,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_time_limit: Duration::from_secs(60),
            default_time_limit: None,
            drain_deadline: Duration::from_secs(5),
            cache_entries: 8,
            shed_retry_ms: 100,
        }
    }
}

/// Monotone server counters, all updated with relaxed atomics (pure
/// tallies — nothing synchronizes through them).
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    results_ok: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cancelled: AtomicU64,
    connections_accepted: AtomicU64,
    connections_refused: AtomicU64,
}

/// A point-in-time copy of the server's counters and gauges.
#[derive(Clone, Copy, Debug, Default)]
pub struct StatsSnapshot {
    /// Mine requests received (parsed and dispatched).
    pub requests: u64,
    /// `result` responses delivered, complete or degraded.
    pub results_ok: u64,
    /// `result` responses whose run tripped a budget/deadline/cancel
    /// (truthful partials).
    pub degraded: u64,
    /// `shed` responses (queue full or connection cap).
    pub shed: u64,
    /// Typed `error` responses.
    pub errors: u64,
    /// Requests answered by θ-filtering the cache.
    pub cache_hits: u64,
    /// Requests mined fresh with caching enabled.
    pub cache_misses: u64,
    /// Requests whose client vanished mid-run (token tripped).
    pub cancelled: u64,
    /// Connections accepted.
    pub connections_accepted: u64,
    /// Connections refused at the cap.
    pub connections_refused: u64,
    /// Jobs currently inside mining workers.
    pub in_flight: usize,
    /// Jobs waiting in the admission queue.
    pub queued: usize,
    /// Live connection handlers.
    pub active_connections: usize,
    /// Resident cache entries.
    pub cache_entries: usize,
    /// Milliseconds since bind.
    pub uptime_ms: f64,
    /// EWMA of mining service time, ms.
    pub avg_mine_ms: f64,
}

/// What `shutdown` observed while draining.
#[derive(Clone, Copy, Debug)]
pub struct DrainReport {
    /// Every job finished before the drain deadline (no forced cancels).
    pub clean: bool,
    /// Outstanding jobs force-cancelled at the deadline.
    pub forced_cancels: usize,
    /// Connection handlers still alive after the drain (0 on a clean
    /// stop; they are socket-closed and exit promptly, but are counted
    /// truthfully).
    pub leaked_connections: usize,
    /// Wall-clock drain duration.
    pub drain_ms: f64,
}

struct Job {
    id: u64,
    req: MineRequest,
    cancel: CancelToken,
    /// Absolute deadline measured from enqueue, so queue wait counts.
    deadline: Option<Instant>,
    reply: mpsc::Sender<JobReply>,
}

struct JobReply {
    outcome: Result<MiningOutcome, taxogram_core::TaxogramError>,
    mine_ms: f64,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The bounded admission queue: `try_push` refuses instead of blocking
/// (that refusal *is* the load-shedding signal), `pop` blocks until a
/// job arrives or the queue is closed **and** drained.
struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    depth: usize,
}

impl JobQueue {
    fn new(depth: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// `false` means the queue refused (full or closed) — the caller
    /// sheds; the job is dropped here.
    fn try_push(&self, job: Job) -> bool {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.closed || s.jobs.len() >= self.depth {
            return false;
        }
        s.jobs.push_back(job);
        drop(s);
        self.ready.notify_one();
        true
    }

    fn pop(&self) -> Option<Job> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = s.jobs.pop_front() {
                return Some(job);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.closed = true;
        drop(s);
        self.ready.notify_all();
    }

    fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).jobs.len()
    }
}

struct Shared {
    db: GraphDatabase,
    taxonomy: Taxonomy,
    opts: ServeOptions,
    queue: JobQueue,
    cache: ResultCache,
    counters: Counters,
    /// No new connections/admissions once set.
    draining: AtomicBool,
    /// A shutdown was asked for (admin op / handle); the owner should
    /// call [`ServerHandle::shutdown`].
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    active_conns: AtomicUsize,
    in_flight: AtomicUsize,
    /// Wakes the drain waiter whenever a job finishes.
    drain_cv: Condvar,
    drain_lock: Mutex<()>,
    /// Live connection sockets, for force-close at drain end.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Cancel tokens of admitted-but-unfinished jobs.
    tokens: Mutex<HashMap<u64, CancelToken>>,
    next_id: AtomicU64,
    /// EWMA of mining service time in microseconds.
    avg_mine_us: AtomicU64,
    started: Instant,
}

impl Shared {
    fn snapshot(&self) -> StatsSnapshot {
        let c = &self.counters;
        StatsSnapshot {
            requests: c.requests.load(Ordering::Relaxed), // tsg-lint: ordering(ORD-15)
            results_ok: c.results_ok.load(Ordering::Relaxed), // tsg-lint: ordering(ORD-15)
            degraded: c.degraded.load(Ordering::Relaxed), // tsg-lint: ordering(ORD-15)
            shed: c.shed.load(Ordering::Relaxed), // tsg-lint: ordering(ORD-15)
            errors: c.errors.load(Ordering::Relaxed), // tsg-lint: ordering(ORD-15)
            cache_hits: c.cache_hits.load(Ordering::Relaxed), // tsg-lint: ordering(ORD-15)
            cache_misses: c.cache_misses.load(Ordering::Relaxed), // tsg-lint: ordering(ORD-15)
            cancelled: c.cancelled.load(Ordering::Relaxed), // tsg-lint: ordering(ORD-15)
            connections_accepted: c.connections_accepted.load(Ordering::Relaxed), // tsg-lint: ordering(ORD-15)
            connections_refused: c.connections_refused.load(Ordering::Relaxed), // tsg-lint: ordering(ORD-15)
            in_flight: self.in_flight.load(Ordering::Acquire), // tsg-lint: ordering(ORD-17)
            queued: self.queue.len(),
            active_connections: self.active_conns.load(Ordering::Acquire), // tsg-lint: ordering(ORD-18)
            cache_entries: self.cache.len(),
            uptime_ms: self.started.elapsed().as_secs_f64() * 1000.0,
            avg_mine_ms: self.avg_mine_us.load(Ordering::Relaxed) as f64 / 1000.0, // tsg-lint: ordering(ORD-20)
        }
    }

    fn request_shutdown(&self) {
        let mut flag = self
            .shutdown_requested
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *flag = true;
        drop(flag);
        self.shutdown_cv.notify_all();
    }

    /// The shed backoff hint: queue depth × mean service time ÷ workers,
    /// floored at the configured minimum and capped at 30 s.
    fn retry_hint_ms(&self) -> u64 {
        let avg_ms = self.avg_mine_us.load(Ordering::Relaxed) / 1000; // tsg-lint: ordering(ORD-20)
        let est = (self.queue.len() as u64 + 1) * avg_ms / self.opts.workers.max(1) as u64;
        est.clamp(self.opts.shed_retry_ms, 30_000)
    }

    fn record_mine_time(&self, mine_ms: f64) {
        let sample = (mine_ms * 1000.0) as u64;
        // A compare-exchange loop so concurrent workers never lose each
        // other's EWMA contribution.
        let _ = self
            .avg_mine_us
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| { // tsg-lint: ordering(ORD-20)
                Some(if old == 0 { sample } else { old - old / 8 + sample / 8 })
            });
    }
}

/// A running server: its address plus the handles needed to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    finished: bool,
}

/// The server entry point.
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) over an
    /// already-loaded database and taxonomy, and starts accepting.
    ///
    /// # Errors
    /// Any socket-level bind failure.
    pub fn bind(
        addr: &str,
        db: GraphDatabase,
        taxonomy: Taxonomy,
        opts: ServeOptions,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let cache_entries = opts.cache_entries;
        let queue_depth = opts.queue_depth;
        let workers = opts.workers.max(1);
        let shared = Arc::new(Shared {
            db,
            taxonomy,
            opts,
            queue: JobQueue::new(queue_depth),
            cache: ResultCache::new(cache_entries),
            counters: Counters::default(),
            draining: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            active_conns: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            drain_cv: Condvar::new(),
            drain_lock: Mutex::new(()),
            conns: Mutex::new(HashMap::new()),
            tokens: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            avg_mine_us: AtomicU64::new(0),
            started: Instant::now(),
        });
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new() // tsg-lint: allow(facade) — real worker-pool thread, joined in shutdown_impl; §16
                    .name(format!("tsg-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker") // tsg-lint: allow(panic) — spawn failure during startup is fatal before any request is accepted
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new() // tsg-lint: allow(facade) — real accept-loop thread, joined in shutdown_impl; §16
                .name("tsg-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor") // tsg-lint: allow(panic) — spawn failure during startup is fatal before any request is accepted
        };
        Ok(ServerHandle {
            addr: local,
            shared,
            accept: Some(accept),
            workers: worker_handles,
            finished: false,
        })
    }
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Asks the owner loop to shut down (same effect as a client
    /// `shutdown` op); actually draining still requires
    /// [`ServerHandle::shutdown`].
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until a shutdown is requested (admin op or
    /// [`ServerHandle::request_shutdown`]) or `timeout` passes; `true`
    /// if a request arrived.
    pub fn wait_shutdown_requested(&self, timeout: Option<Duration>) -> bool {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut flag = self
            .shared
            .shutdown_requested
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        loop {
            if *flag {
                return true;
            }
            match deadline {
                None => {
                    flag = self
                        .shared
                        .shutdown_cv
                        .wait(flag)
                        .unwrap_or_else(|e| e.into_inner());
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return false;
                    }
                    let (f, _) = self
                        .shared
                        .shutdown_cv
                        .wait_timeout(flag, d - now)
                        .unwrap_or_else(|e| e.into_inner());
                    flag = f;
                }
            }
        }
    }

    /// Gracefully drains and stops the server; see the module docs for
    /// the protocol. Idempotent via [`Drop`] (a handle dropped without
    /// calling this shuts down the same way).
    pub fn shutdown(mut self) -> DrainReport {
        self.shutdown_impl()
    }

    fn shutdown_impl(&mut self) -> DrainReport {
        let start = Instant::now();
        let shared = &self.shared;
        shared.draining.store(true, Ordering::Release); // tsg-lint: ordering(ORD-16)
        shared.request_shutdown();
        // Unblock the accept loop with a throwaway self-connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));

        // Phase 1: wait for queued + running jobs under the deadline.
        let deadline = start + shared.opts.drain_deadline;
        let mut guard = shared.drain_lock.lock().unwrap_or_else(|e| e.into_inner());
        let mut clean = true;
        loop {
            if shared.in_flight.load(Ordering::Acquire) == 0 && shared.queue.len() == 0 { // tsg-lint: ordering(ORD-17)
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                clean = false;
                break;
            }
            let (g, _) = shared
                .drain_cv
                .wait_timeout(guard, (deadline - now).min(Duration::from_millis(50)))
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
        drop(guard);

        // Phase 2: force-cancel stragglers; their governed runs return
        // truthful partial results within one class admission.
        let forced: Vec<CancelToken> = {
            let tokens = shared.tokens.lock().unwrap_or_else(|e| e.into_inner());
            tokens.values().cloned().collect()
        };
        for t in &forced {
            t.cancel();
        }
        let forced_cancels = forced.len();
        if forced_cancels > 0 {
            let grace = Instant::now() + shared.opts.drain_deadline;
            let mut guard = shared.drain_lock.lock().unwrap_or_else(|e| e.into_inner());
            while shared.in_flight.load(Ordering::Acquire) != 0 && Instant::now() < grace { // tsg-lint: ordering(ORD-17)
                let (g, _) = shared
                    .drain_cv
                    .wait_timeout(guard, Duration::from_millis(25))
                    .unwrap_or_else(|e| e.into_inner());
                guard = g;
            }
            drop(guard);
        }

        // Phase 3: stop the workers and reap the accept loop.
        shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }

        // Phase 4: force-close lingering connections so their handler
        // threads exit promptly rather than waiting out a read timeout.
        {
            let conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            for stream in conns.values() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        let close_deadline = Instant::now() + Duration::from_secs(2);
        while shared.active_conns.load(Ordering::Acquire) != 0 && Instant::now() < close_deadline { // tsg-lint: ordering(ORD-18)
            std::thread::sleep(Duration::from_millis(5)); // tsg-lint: allow(facade) — bounded poll-sleep while lingering connections close; §16
        }

        self.finished = true;
        DrainReport {
            clean: clean && forced_cancels == 0,
            forced_cancels,
            leaked_connections: shared.active_conns.load(Ordering::Acquire), // tsg-lint: ordering(ORD-18)
            drain_ms: start.elapsed().as_secs_f64() * 1000.0,
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.shutdown_impl();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.draining.load(Ordering::Acquire) { // tsg-lint: ordering(ORD-16)
            break;
        }
        let Ok(stream) = conn else { continue };
        if shared.active_conns.load(Ordering::Acquire) >= shared.opts.max_connections { // tsg-lint: ordering(ORD-18)
            shared
                .counters
                .connections_refused
                .fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-15)
            // Refuse loudly: a shed line, then close. Best-effort — the
            // client may already be gone.
            let mut s = stream;
            let _ = s.set_write_timeout(Some(Duration::from_millis(250)));
            let mut line = shed_response(None, shared.retry_hint_ms());
            line.push('\n');
            let _ = s.write_all(line.as_bytes());
            continue;
        }
        shared
            .counters
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-15)
        shared.active_conns.fetch_add(1, Ordering::AcqRel); // tsg-lint: ordering(ORD-18)
        let conn_id = shared.next_id.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-19)
        if let Ok(clone) = stream.try_clone() {
            shared
                .conns
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(conn_id, clone);
        }
        let shared_conn = Arc::clone(shared);
        let spawned = std::thread::Builder::new() // tsg-lint: allow(facade) — per-connection handler thread, force-closed at drain end; §16
            .name(format!("tsg-serve-conn-{conn_id}"))
            .spawn(move || {
                handle_connection(&shared_conn, stream, conn_id);
                shared_conn
                    .conns
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&conn_id);
                shared_conn.active_conns.fetch_sub(1, Ordering::AcqRel); // tsg-lint: ordering(ORD-18)
            });
        if spawned.is_err() {
            // Thread spawn failed (resource exhaustion): undo the
            // accounting; the stream closes on drop.
            shared.active_conns.fetch_sub(1, Ordering::AcqRel); // tsg-lint: ordering(ORD-18)
            shared
                .conns
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&conn_id);
        }
    }
}

/// What one framing attempt produced.
enum FrameEvent {
    /// A complete line (without the terminator).
    Frame(String),
    /// Clean end of stream between frames.
    Eof,
    /// The client vanished mid-frame.
    EofMidFrame,
    /// No bytes at all for a full read-timeout window.
    Idle,
    /// A partial frame stalled past the read deadline (slow loris).
    Stalled,
    /// The frame exceeded the size cap.
    TooLarge,
    /// The server is draining.
    Draining,
    /// Unrecoverable socket error.
    Broken,
}

/// Newline framing over a socket with a per-frame assembly deadline, an
/// idle deadline, and a size cap. The socket's own read timeout is kept
/// short so the draining flag is observed promptly.
struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
    max_frame: usize,
    frame_deadline: Duration,
}

impl FrameReader {
    fn new(stream: TcpStream, max_frame: usize, frame_deadline: Duration) -> Self {
        let poll = frame_deadline.min(Duration::from_millis(100)).max(Duration::from_millis(5));
        let _ = stream.set_read_timeout(Some(poll));
        FrameReader {
            stream,
            buf: Vec::new(),
            max_frame,
            frame_deadline,
        }
    }

    fn next_frame(&mut self, draining: &AtomicBool) -> FrameEvent {
        let started = Instant::now();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop(); // the \n
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return match String::from_utf8(line) {
                    Ok(s) => FrameEvent::Frame(s),
                    // Surface invalid UTF-8 as a malformed frame (the
                    // caller answers with a typed error).
                    Err(_) => FrameEvent::Frame("\u{FFFD}".into()),
                };
            }
            if self.buf.len() > self.max_frame {
                self.buf.clear();
                return FrameEvent::TooLarge;
            }
            if draining.load(Ordering::Acquire) { // tsg-lint: ordering(ORD-16)
                return FrameEvent::Draining;
            }
            if started.elapsed() >= self.frame_deadline {
                return if self.buf.is_empty() {
                    FrameEvent::Idle
                } else {
                    FrameEvent::Stalled
                };
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        FrameEvent::Eof
                    } else {
                        FrameEvent::EofMidFrame
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]), // tsg-lint: allow(index) — read returned n <= chunk.len()
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return FrameEvent::Broken,
            }
        }
    }
}

/// What a read-side probe of the peer observed. Used while a mine job is
/// in flight to decide between cancelling and delivering.
enum PeerState {
    /// The read side is open (no bytes, or pipelined bytes waiting).
    Open,
    /// The peer sent FIN: it will write nothing more, but a one-shot
    /// client that `shutdown(Write)`s after its request is still
    /// reading — the response must be delivered, not cancelled. (TCP
    /// cannot distinguish that client from one that fully closed; the
    /// delivery write to a fully-closed peer just fails harmlessly.)
    HalfClosed,
    /// A socket error (reset, aborted): nobody is listening.
    Gone,
}

fn peer_state(stream: &TcpStream) -> PeerState {
    if stream.set_nonblocking(true).is_err() {
        return PeerState::Gone;
    }
    let mut probe = [0u8; 1];
    let state = match stream.peek(&mut probe) {
        Ok(0) => PeerState::HalfClosed,
        Ok(_) => PeerState::Open,
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
            PeerState::Open
        }
        Err(_) => PeerState::Gone,
    };
    let _ = stream.set_nonblocking(false);
    state
}

fn write_line(stream: &mut TcpStream, mut line: String) -> bool {
    line.push('\n');
    stream.write_all(line.as_bytes()).is_ok()
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream, _conn_id: u64) {
    let _ = stream.set_write_timeout(Some(shared.opts.write_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = FrameReader::new(
        read_half,
        shared.opts.max_frame_bytes,
        shared.opts.read_timeout,
    );
    loop {
        match reader.next_frame(&shared.draining) {
            FrameEvent::Frame(frame) => {
                if !dispatch_frame(shared, &mut stream, &reader.stream, &frame) {
                    break;
                }
            }
            FrameEvent::TooLarge => {
                shared.counters.errors.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-15)
                let _ = write_line(
                    &mut stream,
                    error_response(
                        None,
                        ErrorCode::FrameTooLarge,
                        &format!("frame exceeds {} bytes", shared.opts.max_frame_bytes),
                    ),
                );
                break;
            }
            FrameEvent::Stalled => {
                shared.counters.errors.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-15)
                let _ = write_line(
                    &mut stream,
                    error_response(
                        None,
                        ErrorCode::ReadStalled,
                        &format!(
                            "frame not completed within {} ms",
                            shared.opts.read_timeout.as_millis()
                        ),
                    ),
                );
                break;
            }
            FrameEvent::Draining => {
                // Quietly close idle connections during drain; a client
                // mid-frame gets the same treatment (its next request
                // would be refused anyway).
                break;
            }
            FrameEvent::Eof
            | FrameEvent::EofMidFrame
            | FrameEvent::Idle
            | FrameEvent::Broken => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Handles one parsed frame; `false` closes the connection.
fn dispatch_frame(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    read_half: &TcpStream,
    frame: &str,
) -> bool {
    let req = match parse_request(frame) {
        Ok(r) => r,
        Err((code, msg)) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-15)
            // A parse failure is frame-local: framing is intact, so the
            // connection stays usable.
            return write_line(stream, error_response(None, code, &msg));
        }
    };
    match req {
        Request::Ping => write_line(
            stream,
            format!(
                "{{\"id\":null,\"type\":\"pong\",\"database_size\":{},\"concepts\":{}}}",
                shared.db.len(),
                shared.taxonomy.concept_count()
            ),
        ),
        Request::Stats => {
            let s = shared.snapshot();
            write_line(stream, stats_json(&s))
        }
        Request::Shutdown => {
            let _ = write_line(
                stream,
                "{\"id\":null,\"type\":\"shutdown-ack\",\"draining\":true}".to_owned(),
            );
            shared.request_shutdown();
            false
        }
        Request::Mine(m) => handle_mine(shared, stream, read_half, m),
    }
}

/// Renders a [`StatsSnapshot`] as the `stats` response line.
pub fn stats_json(s: &StatsSnapshot) -> String {
    format!(
        "{{\"id\":null,\"type\":\"stats\",\"requests\":{},\"results_ok\":{},\"degraded\":{},\"shed\":{},\"errors\":{},\"cache_hits\":{},\"cache_misses\":{},\"cancelled\":{},\"connections_accepted\":{},\"connections_refused\":{},\"in_flight\":{},\"queued\":{},\"active_connections\":{},\"cache_entries\":{},\"uptime_ms\":{:.1},\"avg_mine_ms\":{:.3}}}",
        s.requests,
        s.results_ok,
        s.degraded,
        s.shed,
        s.errors,
        s.cache_hits,
        s.cache_misses,
        s.cancelled,
        s.connections_accepted,
        s.connections_refused,
        s.in_flight,
        s.queued,
        s.active_connections,
        s.cache_entries,
        s.uptime_ms,
        s.avg_mine_ms,
    )
}

fn handle_mine(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    read_half: &TcpStream,
    m: MineRequest,
) -> bool {
    shared.counters.requests.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-15)
    let id = m.id.clone();
    let id_ref = id.as_deref();
    if shared.draining.load(Ordering::Acquire) { // tsg-lint: ordering(ORD-16)
        shared.counters.errors.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-15)
        return write_line(
            stream,
            error_response(id_ref, ErrorCode::ShuttingDown, "server is draining"),
        );
    }

    let key = ConfigKey {
        max_edges: m.max_edges,
        baseline: m.baseline,
    };
    let use_cache = !m.no_cache && !shared.cache.is_disabled();

    // Cache path: answer by θ-filtering a cached complete lower-θ run.
    // Sound by the θ-monotonicity argument (see `cache`); no admission
    // needed — filtering is orders of magnitude cheaper than mining, so
    // cache hits keep flowing even when the worker pool saturates.
    if use_cache {
        if let Some(hit) = shared.cache.lookup(&key, m.theta) {
            shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-15)
            shared.counters.results_ok.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-15)
            let started = Instant::now();
            let floor = shared.db.min_support_count(m.theta);
            let patterns = filter_run(&hit.run, floor);
            // Echo the cached run's own (complete) termination report —
            // its class tallies are real, not fabricated zeros.
            return write_line(
                stream,
                crate::protocol::result_response(
                    id_ref,
                    &patterns,
                    &hit.termination,
                    floor,
                    shared.db.len(),
                    CacheStatus::Hit,
                    started.elapsed().as_secs_f64() * 1000.0,
                ),
            );
        }
        shared.counters.cache_misses.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-15)
    }

    // Admission: a slot in the bounded queue or a typed shed.
    let theta = m.theta;
    let job_id = shared.next_id.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-19)
    let cancel = CancelToken::new();
    let (tx, rx) = mpsc::channel();
    let limit = m
        .time_limit
        .map(|d| d.min(shared.opts.max_time_limit))
        .or(shared.opts.default_time_limit);
    let job = Job {
        id: job_id,
        req: m,
        cancel: cancel.clone(),
        deadline: limit.map(|d| Instant::now() + d),
        reply: tx,
    };
    shared
        .tokens
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(job_id, cancel.clone());
    if !shared.queue.try_push(job) {
        shared
            .tokens
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&job_id);
        shared.counters.shed.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-15)
        return write_line(stream, shed_response(id_ref, shared.retry_hint_ms()));
    }

    // Wait for the worker, watching the socket: a client whose socket
    // errors out mid-request trips the token so the worker is reclaimed
    // within one class admission. A half-close (read-side EOF) is
    // tolerated — one-shot clients that shut down their write side after
    // sending still get their response.
    let mut gone = false;
    let mut half_closed = false;
    let reply = loop {
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(r) => break Some(r),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if !gone {
                    match peer_state(read_half) {
                        PeerState::Open => {}
                        PeerState::HalfClosed => half_closed = true,
                        PeerState::Gone => {
                            gone = true;
                            shared.counters.cancelled.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-15)
                            cancel.cancel();
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break None,
        }
    };
    if gone {
        // Nobody to answer; the worker was reclaimed via the token.
        return false;
    }
    let Some(reply) = reply else {
        shared.counters.errors.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-15)
        return write_line(
            stream,
            error_response(id_ref, ErrorCode::Internal, "worker dropped the request"),
        );
    };
    let delivered = match reply.outcome {
        Ok(outcome) => {
            if outcome.termination.is_complete() {
                if use_cache {
                    shared.cache.insert(
                        key,
                        theta,
                        Arc::new(outcome.result.clone()),
                        outcome.termination.clone(),
                    );
                }
            } else {
                shared.counters.degraded.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-15)
            }
            shared.counters.results_ok.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-15)
            let cache_status = if use_cache {
                CacheStatus::Miss
            } else {
                CacheStatus::Bypass
            };
            write_line(
                stream,
                crate::protocol::result_response(
                    id_ref,
                    &outcome.result.patterns,
                    &outcome.termination,
                    outcome.result.min_support_count,
                    outcome.result.database_size,
                    cache_status,
                    reply.mine_ms,
                ),
            )
        }
        Err(e) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-15)
            write_line(stream, error_response(id_ref, ErrorCode::Internal, &e.to_string()))
        }
    };
    // A half-closed peer can send nothing more: close once answered.
    delivered && !half_closed
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        shared.in_flight.fetch_add(1, Ordering::AcqRel); // tsg-lint: ordering(ORD-17)
        let (reply, mined) = run_job(shared, &job);
        if mined {
            shared.record_mine_time(reply.mine_ms);
        }
        // Release the slot *before* handing over the reply: a client
        // must never observe its own response while the job is still
        // counted in_flight (stats and drain read that gauge).
        shared
            .tokens
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&job.id);
        shared.in_flight.fetch_sub(1, Ordering::AcqRel); // tsg-lint: ordering(ORD-17)
        {
            let _unused = shared.drain_lock.lock().unwrap_or_else(|e| e.into_inner());
            shared.drain_cv.notify_all();
        }
        // The handler may have vanished (client gone + connection
        // closed); a failed send is fine.
        let _ = job.reply.send(reply);
    }
}

/// Runs one governed mine. The flag says whether the reply's timing
/// should feed the EWMA (actual mining work, not an instant
/// already-expired answer that would skew it).
fn run_job(shared: &Arc<Shared>, job: &Job) -> (JobReply, bool) {
    let start = Instant::now();
    let m = &job.req;
    // Queue wait counts against the deadline: a request whose deadline
    // passed while queued degrades gracefully to a truthful empty
    // prefix, without burning a worker on doomed mining.
    let mut budget = Budget::unlimited();
    if let Some(dl) = job.deadline {
        let remaining = dl.saturating_duration_since(start);
        if remaining.is_zero() {
            return (
                JobReply {
                    outcome: Ok(expired_outcome(shared, m.theta)),
                    mine_ms: 0.0,
                },
                false,
            );
        }
        budget = budget.deadline(remaining);
    }
    if let Some(p) = m.max_patterns {
        budget = budget.max_patterns(p);
    }
    if let Some(b) = m.max_memory_bytes {
        budget = budget.max_peak_bytes(b);
    }
    let govern = GovernOptions {
        cancel: Some(job.cancel.clone()),
        budget,
        ..GovernOptions::default()
    };
    let mut cfg = if m.baseline {
        TaxogramConfig::baseline(m.theta)
    } else {
        TaxogramConfig::with_threshold(m.theta)
    };
    cfg.max_edges = m.max_edges;
    let outcome = Taxogram::new(cfg).mine_governed(&shared.db, &shared.taxonomy, &govern);
    (
        JobReply {
            outcome,
            mine_ms: start.elapsed().as_secs_f64() * 1000.0,
        },
        true,
    )
}

/// The truthful outcome for a request whose deadline expired in the
/// queue: an empty (sound, zero-length prefix) result.
fn expired_outcome(shared: &Arc<Shared>, theta: f64) -> MiningOutcome {
    MiningOutcome {
        result: MiningResult {
            patterns: Vec::new(),
            stats: MiningStats::default(),
            min_support_count: shared.db.min_support_count(theta),
            database_size: shared.db.len(),
        },
        termination: Termination {
            reason: TerminationReason::DeadlineExceeded,
            classes_finished: 0,
            classes_abandoned: 0,
            frontier: Vec::new(),
        },
    }
}
