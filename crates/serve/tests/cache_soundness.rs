//! The θ-monotonicity cache soundness property, on the wire rendering.
//!
//! The serve cache answers a query at θ′ by support-filtering a cached
//! complete run mined at θ ≤ θ′. The `cache` module's argument says the
//! filtered pattern stream is *byte-identical* to a fresh mine at θ′ —
//! same patterns, same order, same supports. These properties test that
//! claim end to end through [`tsg_serve::render_patterns`], the exact
//! bytes clients see, plus the config-key hygiene around it.

use proptest::prelude::*;
use std::sync::Arc;
use taxogram_core::{Taxogram, TaxogramConfig, Termination, TerminationReason};
use tsg_graph::GraphDatabase;
use tsg_serve::{filter_run, render_patterns, ConfigKey, ResultCache};
use tsg_taxonomy::Taxonomy;

/// A synthetic complete-run termination for cache inserts (the ungoverned
/// `mine` entry point returns no report of its own).
fn complete() -> Termination {
    Termination {
        reason: TerminationReason::Completed,
        classes_finished: 1,
        classes_abandoned: 0,
        frontier: Vec::new(),
    }
}

fn arb_input() -> impl Strategy<Value = (Taxonomy, GraphDatabase)> {
    tsg_testkit::gen::arb_input_sized(6, 5, 5)
}

/// θ pairs with θ_cached ≤ θ_query, spanning equal, close, and far.
fn arb_theta_pair() -> impl Strategy<Value = (f64, f64)> {
    prop::sample::select(vec![
        (0.25f64, 0.25f64),
        (0.25, 0.4),
        (0.25, 0.6),
        (0.25, 1.0),
        (0.4, 0.6),
        (0.4, 1.0),
        (0.6, 0.6),
        (0.6, 1.0),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Filtering a cached θ run to θ′'s support floor renders
    /// byte-identically to mining fresh at θ′.
    #[test]
    fn theta_filtered_cache_is_byte_identical_to_fresh_mine(
        (taxonomy, db) in arb_input(),
        (theta_cached, theta_query) in arb_theta_pair(),
        max_edges in prop::sample::select(vec![2usize, 3, 4]),
    ) {
        let cfg_cached = TaxogramConfig::with_threshold(theta_cached).max_edges(max_edges);
        let cached = Taxogram::new(cfg_cached).mine(&db, &taxonomy).unwrap();

        let cfg_fresh = TaxogramConfig::with_threshold(theta_query).max_edges(max_edges);
        let fresh = Taxogram::new(cfg_fresh).mine(&db, &taxonomy).unwrap();

        let filtered = filter_run(&cached, db.min_support_count(theta_query));
        prop_assert_eq!(
            render_patterns(&filtered),
            render_patterns(&fresh.patterns),
            "θ={} filtered to θ′={} must match the fresh θ′ run on the wire",
            theta_cached,
            theta_query
        );
    }

    /// The lookup path end to end: insert at θ, look up at θ′ ≥ θ, filter —
    /// still byte-identical; and a lookup below the cached θ refuses.
    #[test]
    fn cache_lookup_then_filter_is_sound(
        (taxonomy, db) in arb_input(),
        (theta_cached, theta_query) in arb_theta_pair(),
    ) {
        let key = ConfigKey { max_edges: Some(3), baseline: false };
        let cfg = TaxogramConfig::with_threshold(theta_cached).max_edges(3);
        let run = Taxogram::new(cfg).mine(&db, &taxonomy).unwrap();
        let cache = ResultCache::new(4);
        cache.insert(key, theta_cached, Arc::new(run), complete());

        let hit = cache.lookup(&key, theta_query).expect("θ′ ≥ θ must hit");
        prop_assert_eq!(hit.theta, theta_cached);
        prop_assert!(hit.termination.is_complete());
        let filtered = filter_run(&hit.run, db.min_support_count(theta_query));

        let cfg_fresh = TaxogramConfig::with_threshold(theta_query).max_edges(3);
        let fresh = Taxogram::new(cfg_fresh).mine(&db, &taxonomy).unwrap();
        prop_assert_eq!(render_patterns(&filtered), render_patterns(&fresh.patterns));

        // Strictly below the cached θ the cache cannot answer: the cached
        // run may be missing patterns frequent only at the lower floor.
        if theta_cached > 0.2 {
            prop_assert!(cache.lookup(&key, theta_cached - 0.1).is_none());
        }
    }

    /// Config-key hygiene: a differing `max_edges` or enhancement set
    /// must bypass the cached entry entirely — filtering across configs
    /// would be unsound, not just stale.
    #[test]
    fn differing_config_never_reuses_the_cache(
        (taxonomy, db) in arb_input(),
        theta in prop::sample::select(vec![0.4f64, 0.6, 1.0]),
    ) {
        let cache = ResultCache::new(4);
        let key = ConfigKey { max_edges: Some(3), baseline: false };
        let run = Taxogram::new(TaxogramConfig::with_threshold(0.25).max_edges(3))
            .mine(&db, &taxonomy)
            .unwrap();
        cache.insert(key, 0.25, Arc::new(run), complete());

        let edges_differ = ConfigKey { max_edges: Some(2), baseline: false };
        let mode_differs = ConfigKey { max_edges: Some(3), baseline: true };
        prop_assert!(cache.lookup(&edges_differ, theta).is_none());
        prop_assert!(cache.lookup(&mode_differs, theta).is_none());
        prop_assert!(cache.lookup(&key, theta).is_some());

        // And the would-be cross-config answer really is wrong whenever
        // the configs disagree on the pattern set: a baseline mine at θ
        // need not equal the enhanced mine filtered to θ.
        let enhanced = Taxogram::new(TaxogramConfig::with_threshold(theta).max_edges(3))
            .mine(&db, &taxonomy)
            .unwrap();
        let capped = Taxogram::new(TaxogramConfig::with_threshold(theta).max_edges(2))
            .mine(&db, &taxonomy)
            .unwrap();
        // Not an equality assertion — the sets may coincide on tiny
        // inputs — but capped patterns must never exceed 2 edges while
        // the enhanced run may: verify the cap actually bites the shape.
        for p in &capped.patterns {
            prop_assert!(p.graph.edge_count() <= 2);
        }
        let _ = enhanced;
    }
}
