//! The protocol fault matrix.
//!
//! Each test injects one hostile wire behavior and asserts the hardened
//! contract: every fault yields a *typed* response or a clean close —
//! never a hang, a leaked worker, or a short/corrupt result — and
//! overload sheds new work while in-flight requests return truthful
//! partials.

use std::time::{Duration, Instant};
use tsg_datagen::{generate_database, generate_taxonomy, GraphGenConfig, SynthTaxonomyConfig};
use tsg_serve::json::{self, Json};
use tsg_serve::{ServeOptions, Server, ServerHandle};
use tsg_testkit::case;
use tsg_testkit::netfault::{cancel_storm, WireClient, WirePlan};

const IO: Duration = Duration::from_secs(5);

/// Fast-timeout options for tests: stalls are detected in ~300 ms and
/// drains are bounded by 3 s.
fn fast_opts() -> ServeOptions {
    ServeOptions {
        workers: 2,
        queue_depth: 4,
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_secs(2),
        drain_deadline: Duration::from_secs(3),
        shed_retry_ms: 25,
        ..ServeOptions::default()
    }
}

/// A server over a small deterministic testkit case.
fn start(opts: ServeOptions) -> ServerHandle {
    let c = case(42);
    Server::bind("127.0.0.1:0", c.db, c.taxonomy, opts).expect("bind ephemeral")
}

/// A server over a database heavy enough that a mine at tiny θ cannot
/// finish within a short deadline — used to saturate the worker pool
/// deterministically.
fn start_heavy(opts: ServeOptions) -> ServerHandle {
    // Governance deadlines are observed at class-admission boundaries,
    // so the case must be slow through *many modest classes* (broad
    // label vocabulary, mid-size graphs), not one explosive class.
    let taxonomy = generate_taxonomy(&SynthTaxonomyConfig {
        concepts: 72,
        relationships: 90,
        depth: 5,
        seed: 9,
    });
    let db = generate_database(
        &taxonomy,
        &GraphGenConfig {
            graph_count: 400,
            max_edges: 18,
            seed: 9,
            ..GraphGenConfig::default()
        },
    );
    Server::bind("127.0.0.1:0", db, taxonomy, opts).expect("bind ephemeral")
}

fn connect(h: &ServerHandle) -> WireClient {
    WireClient::connect(h.addr(), IO).expect("connect")
}

fn roundtrip(c: &mut WireClient, frame: &str) -> Json {
    assert!(c.send(frame, &WirePlan::Clean), "send {frame}");
    let line = c.read_line(IO).unwrap_or_else(|| panic!("no reply to {frame}"));
    json::parse(&line).unwrap_or_else(|e| panic!("unparseable reply {line:?}: {e}"))
}

fn field<'a>(v: &'a Json, key: &str) -> &'a Json {
    v.get(key).unwrap_or_else(|| panic!("missing {key} in {v:?}"))
}

fn typ(v: &Json) -> String {
    field(v, "type").as_str().expect("type is a string").to_owned()
}

/// Polls until the server reports no in-flight or queued work (proof of
/// worker reclamation), failing after `within`.
fn assert_drains(h: &ServerHandle, within: Duration) {
    let deadline = Instant::now() + within;
    loop {
        let s = h.stats();
        if s.in_flight == 0 && s.queued == 0 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "work leaked: in_flight={} queued={}",
            s.in_flight,
            s.queued
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn ping_mine_stats_roundtrip() {
    let h = start(fast_opts());
    let mut c = connect(&h);

    let pong = roundtrip(&mut c, r#"{"op":"ping"}"#);
    assert_eq!(typ(&pong), "pong");
    assert!(field(&pong, "database_size").as_u64().unwrap() > 0);

    let r = roundtrip(&mut c, r#"{"op":"mine","id":"q1","theta":1.0,"no_cache":true}"#);
    assert_eq!(typ(&r), "result");
    assert_eq!(field(&r, "id").as_str(), Some("q1"));
    assert_eq!(field(&r, "cache").as_str(), Some("bypass"));
    let term = field(&r, "termination");
    assert_eq!(field(term, "complete").as_bool(), Some(true));
    assert_eq!(field(term, "reason").as_str(), Some("completed"));

    let s = roundtrip(&mut c, r#"{"op":"stats"}"#);
    assert_eq!(typ(&s), "stats");
    assert!(field(&s, "requests").as_u64().unwrap() >= 1);
    assert_eq!(field(&s, "shed").as_u64(), Some(0));

    let report = h.shutdown();
    assert!(report.clean, "idle shutdown must be clean: {report:?}");
    assert_eq!(report.leaked_connections, 0);
}

#[test]
fn malformed_json_gets_typed_error_and_connection_survives() {
    let h = start(fast_opts());
    let mut c = connect(&h);

    let e = roundtrip(&mut c, "this is { not json");
    assert_eq!(typ(&e), "error");
    assert_eq!(field(&e, "code").as_str(), Some("malformed-json"));

    let e = roundtrip(&mut c, r#"{"op":"mine","theta":7.5}"#);
    assert_eq!(typ(&e), "error");
    assert_eq!(field(&e, "code").as_str(), Some("bad-request"));

    // Framing stayed intact: the same connection still serves.
    let pong = roundtrip(&mut c, r#"{"op":"ping"}"#);
    assert_eq!(typ(&pong), "pong");
    let _ = h.shutdown();
}

#[test]
fn oversized_frame_rejected_with_typed_error() {
    let h = start(ServeOptions {
        max_frame_bytes: 256,
        ..fast_opts()
    });
    let mut c = connect(&h);
    let huge = format!("{{\"op\":\"mine\",\"theta\":0.5,\"id\":\"{}\"}}", "x".repeat(4096));
    assert!(c.send(&huge, &WirePlan::Clean));
    let line = c.read_line(IO).expect("typed error before close");
    let v = json::parse(&line).expect("parseable error");
    assert_eq!(typ(&v), "error");
    assert_eq!(field(&v, "code").as_str(), Some("frame-too-large"));
    // The connection is then closed, not left dangling.
    assert_eq!(c.read_line(Duration::from_secs(2)), None);
    let _ = h.shutdown();
}

#[test]
fn slow_loris_partial_frame_is_stalled_not_hung() {
    let h = start(fast_opts());
    let mut c = connect(&h);
    // Deliver a few bytes of a frame and then go silent: the frame
    // deadline (300 ms) must fire with a typed error and a close.
    assert!(c.send_raw(b"{\"op\":\"mi"));
    let started = Instant::now();
    let line = c.read_line(Duration::from_secs(3)).expect("stall reply");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "stall must be detected within the read deadline"
    );
    let v = json::parse(&line).expect("parseable");
    assert_eq!(typ(&v), "error");
    assert_eq!(field(&v, "code").as_str(), Some("read-stalled"));
    assert_eq!(c.read_line(Duration::from_secs(2)), None, "then closed");
    let _ = h.shutdown();
}

#[test]
fn torn_write_within_deadline_reassembles_fine() {
    let h = start(fast_opts());
    let mut c = connect(&h);
    let frame = r#"{"op":"mine","id":"torn","theta":1.0,"no_cache":true}"#;
    assert!(c.send(
        frame,
        &WirePlan::Torn {
            prefix: 17,
            delay: Duration::from_millis(80),
        },
    ));
    let line = c.read_line(IO).expect("reassembled reply");
    let v = json::parse(&line).expect("parseable");
    assert_eq!(typ(&v), "result");
    assert_eq!(field(&v, "id").as_str(), Some("torn"));

    // Byte-dribble (chunked) delivery that still finishes in time.
    assert!(c.send(
        r#"{"op":"ping"}"#,
        &WirePlan::Chunked {
            chunk: 1,
            delay: Duration::from_millis(2),
        },
    ));
    let v = json::parse(&c.read_line(IO).expect("chunked reply")).expect("parseable");
    assert_eq!(typ(&v), "pong");
    let _ = h.shutdown();
}

#[test]
fn truncated_frame_disconnect_is_a_clean_close() {
    let h = start(fast_opts());
    let mut c = connect(&h);
    let frame = r#"{"op":"mine","theta":0.5}"#;
    // The plan writes a prefix and hard-closes; the server must just
    // drop the connection without crashing or leaking.
    assert!(!c.send(frame, &WirePlan::Truncated { keep: 10 }));
    assert_drains(&h, Duration::from_secs(3));
    // And stays serviceable.
    let mut c2 = connect(&h);
    assert_eq!(typ(&roundtrip(&mut c2, r#"{"op":"ping"}"#)), "pong");
    let _ = h.shutdown();
}

#[test]
fn cancel_storm_reclaims_every_worker() {
    let h = start(ServeOptions {
        workers: 1,
        ..fast_opts()
    });
    let frame = r#"{"op":"mine","theta":0.4,"no_cache":true}"#;
    let report = cancel_storm(h.addr(), frame, 8, IO);
    assert!(report.delivered > 0, "storm delivered nothing: {report:?}");
    // Every vanished client's job must finish or be cancelled — no
    // worker may stay pinned to a dead connection.
    assert_drains(&h, Duration::from_secs(5));
    let mut c = connect(&h);
    let r = roundtrip(&mut c, r#"{"op":"mine","theta":1.0,"no_cache":true}"#);
    assert_eq!(typ(&r), "result");
    let report = h.shutdown();
    assert_eq!(report.leaked_connections, 0, "{report:?}");
}

#[test]
fn overload_sheds_and_inflight_return_truthful_partials() {
    let h = start_heavy(ServeOptions {
        workers: 1,
        queue_depth: 1,
        max_time_limit: Duration::from_secs(2),
        ..fast_opts()
    });
    // Four concurrent un-finishable requests against one worker and a
    // one-slot queue: one runs, one queues, the rest must shed.
    let frame =
        r#"{"op":"mine","theta":0.01,"time_limit_ms":400,"no_cache":true}"#;
    let addr = h.addr();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = WireClient::connect(addr, IO).expect("connect");
                assert!(c.send(frame, &WirePlan::Clean));
                let line = c.read_line(IO).expect("every request gets an answer");
                json::parse(&line).expect("parseable")
            })
        })
        .collect();
    let replies: Vec<Json> = handles.into_iter().map(|t| t.join().expect("client")).collect();

    let shed: Vec<&Json> = replies.iter().filter(|r| typ(r) == "shed").collect();
    let results: Vec<&Json> = replies.iter().filter(|r| typ(r) == "result").collect();
    assert_eq!(shed.len() + results.len(), replies.len(), "typed answers only");
    assert!(!shed.is_empty(), "saturation must shed: {replies:?}");
    assert!(!results.is_empty(), "admitted work must be answered");
    for s in &shed {
        assert!(
            field(s, "retry_after_ms").as_u64().unwrap() >= 25,
            "hint respects the floor"
        );
    }
    for r in &results {
        // The heavy case cannot finish in 700 ms: the answer is a
        // truthful deadline partial, not a silent truncation.
        let term = field(r, "termination");
        assert_eq!(field(term, "complete").as_bool(), Some(false));
        assert_eq!(field(term, "reason").as_str(), Some("deadline-exceeded"));
    }
    assert_drains(&h, Duration::from_secs(5));
    let _ = h.shutdown();
}

#[test]
fn budget_partial_is_a_prefix_of_the_full_run() {
    let h = start(fast_opts());
    let mut c = connect(&h);
    let full = roundtrip(&mut c, r#"{"op":"mine","theta":0.4,"no_cache":true}"#);
    assert_eq!(typ(&full), "result");
    let full_patterns = field(&full, "patterns").render();

    let partial = roundtrip(
        &mut c,
        r#"{"op":"mine","theta":0.4,"max_patterns":2,"no_cache":true}"#,
    );
    assert_eq!(typ(&partial), "result");
    let term = field(&partial, "termination");
    let partial_patterns = field(&partial, "patterns").render();
    if field(term, "complete").as_bool() == Some(true) {
        // Fewer than 3 patterns exist overall; the budget never tripped.
        assert_eq!(partial_patterns, full_patterns);
    } else {
        assert_eq!(
            field(term, "reason").as_str(),
            Some("budget-exceeded:patterns")
        );
        // Serial-prefix soundness on the wire: the partial's patterns
        // array is byte-for-byte a prefix of the full run's.
        let inner_full = &full_patterns[..full_patterns.len() - 1];
        let inner_partial = &partial_patterns[..partial_patterns.len() - 1];
        assert!(
            inner_full.starts_with(inner_partial),
            "partial {inner_partial} is not a prefix of {inner_full}"
        );
    }
    let _ = h.shutdown();
}

#[test]
fn theta_cache_answers_hits_after_a_miss() {
    let h = start(fast_opts());
    let mut c = connect(&h);
    let miss = roundtrip(&mut c, r#"{"op":"mine","theta":0.4}"#);
    assert_eq!(field(&miss, "cache").as_str(), Some("miss"));
    // θ′ ≥ θ with the same config: answered from the cached run.
    let hit = roundtrip(&mut c, r#"{"op":"mine","theta":0.6}"#);
    assert_eq!(field(&hit, "cache").as_str(), Some("hit"));
    // Byte-identical to a fresh mine at θ′ (the cache-soundness suite
    // proptests this; here one deterministic spot check end-to-end).
    let fresh = roundtrip(&mut c, r#"{"op":"mine","theta":0.6,"no_cache":true}"#);
    assert_eq!(
        field(&hit, "patterns").render(),
        field(&fresh, "patterns").render()
    );
    // A different config must not match the cached entry.
    let other = roundtrip(&mut c, r#"{"op":"mine","theta":0.6,"max_edges":1}"#);
    assert_eq!(field(&other, "cache").as_str(), Some("miss"));
    let _ = h.shutdown();
}

#[test]
fn connection_cap_refuses_with_shed() {
    let h = start(ServeOptions {
        max_connections: 1,
        ..fast_opts()
    });
    let mut c1 = connect(&h);
    assert_eq!(typ(&roundtrip(&mut c1, r#"{"op":"ping"}"#)), "pong");
    let mut c2 = connect(&h);
    let line = c2.read_line(IO).expect("refusal is loud, not silent");
    let v = json::parse(&line).expect("parseable");
    assert_eq!(typ(&v), "shed");
    let _ = h.shutdown();
}

#[test]
fn shutdown_op_drains_cleanly_within_bound() {
    let h = start(fast_opts());
    let mut c = connect(&h);
    assert_eq!(typ(&roundtrip(&mut c, r#"{"op":"mine","theta":1.0}"#)), "result");
    let ack = roundtrip(&mut c, r#"{"op":"shutdown"}"#);
    assert_eq!(typ(&ack), "shutdown-ack");
    assert!(
        h.wait_shutdown_requested(Some(Duration::from_secs(3))),
        "admin op must surface to the handle"
    );
    let started = Instant::now();
    let report = h.shutdown();
    assert!(report.clean, "{report:?}");
    assert_eq!(report.leaked_connections, 0);
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "drain is bounded"
    );
}
