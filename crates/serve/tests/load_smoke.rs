//! The synthetic load driver against a live daemon: every request must
//! come back as exactly one of ok / degraded / shed / typed error —
//! never lost — and the drain afterwards must reclaim every worker and
//! connection. This is the `scripts/ci.sh` serve-stage smoke; the bench
//! snapshot records the same driver's latency percentiles and shed rate
//! for trend tracking.

use std::time::Duration;
use tsg_serve::{run_load, LoadOptions, ServeOptions, Server};

fn serve_opts(workers: usize, queue_depth: usize) -> ServeOptions {
    ServeOptions {
        workers,
        queue_depth,
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_secs(2),
        drain_deadline: Duration::from_secs(3),
        shed_retry_ms: 25,
        ..ServeOptions::default()
    }
}

#[test]
fn load_sweep_loses_nothing_and_drains_clean() {
    let case = tsg_testkit::case(7);
    let h = Server::bind(
        "127.0.0.1:0",
        case.db.clone(),
        case.taxonomy.clone(),
        serve_opts(2, 8),
    )
    .unwrap();
    let report = run_load(
        h.addr(),
        &LoadOptions {
            clients: 4,
            requests_per_client: 6,
            theta: 0.4,
            no_cache: true,
            ..LoadOptions::default()
        },
    );
    assert_eq!(report.sent, 24);
    assert_eq!(report.lost, 0, "no request may vanish over loopback");
    assert_eq!(
        report.ok + report.degraded + report.shed + report.errors,
        report.sent,
        "every request resolves to exactly one typed outcome"
    );
    assert!(report.ok > 0, "an unloaded tiny case must mostly succeed");
    assert!(report.p50_ms <= report.p95_ms && report.p95_ms <= report.p99_ms);

    let stats = h.stats();
    assert_eq!(stats.in_flight, 0, "no job may outlive the load run");
    let drain = h.shutdown();
    assert!(drain.clean, "idle daemon must drain clean: {drain:?}");
    assert_eq!(drain.leaked_connections, 0);
}

#[test]
fn saturated_load_sheds_but_still_loses_nothing() {
    let case = tsg_testkit::case(11);
    // One worker, a one-slot queue: most of an 8-client burst must shed.
    let h = Server::bind(
        "127.0.0.1:0",
        case.db.clone(),
        case.taxonomy.clone(),
        serve_opts(1, 1),
    )
    .unwrap();
    let report = run_load(
        h.addr(),
        &LoadOptions {
            clients: 8,
            requests_per_client: 3,
            theta: 0.4,
            no_cache: true,
            max_backoff: Duration::from_millis(5),
            ..LoadOptions::default()
        },
    );
    assert_eq!(report.lost, 0, "shedding must stay typed, never a hang");
    assert_eq!(
        report.ok + report.degraded + report.shed + report.errors,
        report.sent
    );
    let drain = h.shutdown();
    assert_eq!(drain.leaked_connections, 0, "{drain:?}");
}
