//! **TAcGM** — the bottom-up, level-wise comparator the paper evaluates
//! against (a reimplementation of Inokuchi's generalized AcGM, "Mining
//! Generalized Substructures from a Set of Labeled Graphs", ICDM 2004; the
//! Taxogram authors also had to reimplement it, as "the source code or
//! executable files for TAcGM were not publicly available").
//!
//! The algorithm works breadth-first over pattern size in edges, directly
//! in the *specialized* label space:
//!
//! * level 1: every generalized single-edge pattern with sufficient
//!   support, each carrying its full embedding list;
//! * level k+1: every frequent size-k pattern is extended by one edge at
//!   every embedding — the fresh endpoint's label generalizes to every
//!   taxonomy ancestor — and candidates are deduplicated up to isomorphism
//!   with their embedding lists merged;
//! * finally, over-generalized patterns (an equally-supported,
//!   structurally identical specialization exists) are pruned pairwise.
//!
//! Because a pattern and each of its generalizations are processed
//! *independently*, the same database occurrence is stored and re-derived
//! once per generalization level (the paper's Example 1.2 critique:
//! `O(dⁿ)` copies, Lemma 1), and because levels are materialized in full
//! breadth-first fashion, memory grows with the number of frequent
//! patterns per level — the cause of the out-of-memory failures the paper
//! reports for databases past 4,000 graphs or 20-edge graphs. This
//! implementation reproduces that behavior honestly through an explicit
//! memory budget: the run aborts with [`TacgmError::MemoryBudgetExceeded`]
//! instead of crashing the process.

// tsg-lint: allow(index) — candidate and embedding tables are indexed by dense ids the mining loop itself issues

use std::collections::{HashMap, HashSet};
use tsg_graph::{EdgeLabel, GraphDatabase, LabeledGraph, NodeId, NodeLabel};
use tsg_gspan::Embedding;
use tsg_iso::{is_gen_iso, is_isomorphic};
use tsg_taxonomy::Taxonomy;

/// Configuration for a TAcGM run.
#[derive(Clone, Copy, Debug)]
pub struct TacgmConfig {
    /// Fractional support threshold `θ ∈ [0, 1]`.
    pub threshold: f64,
    /// Cap on pattern size in edges.
    pub max_edges: Option<usize>,
    /// Abort when the stored embeddings and candidates exceed this many
    /// bytes (models the 2008 testbed's 4 GB heap; `None` = unlimited).
    pub memory_budget_bytes: Option<usize>,
    /// Prune candidate labels that are generalized-infrequent (AcGM's
    /// standard frequent-label filter).
    pub prune_infrequent_labels: bool,
    /// Run the final over-generalization pruning pass (on by default;
    /// disable to inspect the full frequent generalized set).
    pub prune_overgeneralized: bool,
}

impl TacgmConfig {
    /// A default configuration at the given threshold, unlimited memory.
    pub fn with_threshold(threshold: f64) -> Self {
        TacgmConfig {
            threshold,
            max_edges: None,
            memory_budget_bytes: None,
            prune_infrequent_labels: true,
            prune_overgeneralized: true,
        }
    }

    /// Sets the memory budget.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget_bytes = Some(bytes);
        self
    }

    /// Sets the pattern-size cap.
    pub fn max_edges(mut self, cap: usize) -> Self {
        self.max_edges = Some(cap);
        self
    }
}

/// Errors from a TAcGM run.
#[derive(Debug, Clone, PartialEq)]
pub enum TacgmError {
    /// The level-wise embedding store outgrew the configured budget — the
    /// analog of the paper's "out-of-memory error" observations.
    MemoryBudgetExceeded {
        /// The level (pattern size in edges) being materialized.
        level: usize,
        /// Bytes accounted when the budget tripped.
        bytes: usize,
    },
    /// The support threshold is outside `[0, 1]`.
    InvalidThreshold {
        /// The offending value.
        theta: f64,
    },
    /// The database contains directed graphs, which this level-wise
    /// comparator does not support (matching the paper's setup, where all
    /// comparator runs used undirected data). Use Taxogram for directed
    /// mining.
    DirectedUnsupported,
}

impl std::fmt::Display for TacgmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TacgmError::MemoryBudgetExceeded { level, bytes } => write!(
                f,
                "memory budget exceeded at level {level} ({bytes} bytes) — TAcGM's breadth-first materialization does not fit"
            ),
            TacgmError::InvalidThreshold { theta } => {
                write!(f, "support threshold {theta} outside [0, 1]")
            }
            TacgmError::DirectedUnsupported => {
                write!(f, "TAcGM supports undirected databases only; use Taxogram for directed mining")
            }
        }
    }
}

impl std::error::Error for TacgmError {}

/// A mined pattern with its support.
#[derive(Clone, Debug)]
pub struct TacgmPattern {
    /// The pattern graph.
    pub graph: LabeledGraph,
    /// Distinct-graph support count.
    pub support_count: usize,
}

/// Run counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct TacgmStats {
    /// Candidates generated (before support filtering), all levels.
    pub candidates: usize,
    /// Embeddings stored across all frequent patterns — each database
    /// occurrence is stored once per pattern that matches it, which is the
    /// redundancy Taxogram's shared occurrence indices eliminate.
    pub embeddings_stored: usize,
    /// Peak bytes accounted against the budget.
    pub peak_bytes: usize,
    /// Levels completed.
    pub levels: usize,
    /// Patterns pruned as over-generalized in post-processing.
    pub overgeneralized: usize,
}

/// The result of a successful run.
#[derive(Clone, Debug)]
pub struct TacgmResult {
    /// Frequent, non-over-generalized patterns.
    pub patterns: Vec<TacgmPattern>,
    /// Run counters.
    pub stats: TacgmStats,
    /// Absolute support floor used.
    pub min_support_count: usize,
}

/// One level entry: a pattern with its embeddings.
struct Entry {
    graph: LabeledGraph,
    embeddings: Vec<Embedding>,
    support: usize,
}

impl Entry {
    fn bytes(&self) -> usize {
        self.embeddings
            .iter()
            .map(|e| (e.map.len() + e.edges.len()) * std::mem::size_of::<usize>() + 24)
            .sum::<usize>()
            + self.graph.node_count() * 8
            + self.graph.edge_count() * 24
    }
}

/// Mines `db` over `taxonomy` with the level-wise generalized algorithm.
///
/// # Errors
/// Fails on an invalid threshold or when the memory budget trips.
pub fn mine(
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    config: &TacgmConfig,
) -> Result<TacgmResult, TacgmError> {
    if !(0.0..=1.0).contains(&config.threshold) || config.threshold.is_nan() {
        return Err(TacgmError::InvalidThreshold {
            theta: config.threshold,
        });
    }
    if db.iter().any(|(_, g)| g.is_directed()) {
        return Err(TacgmError::DirectedUnsupported);
    }
    let min_support = db.min_support_count(config.threshold);
    let mut stats = TacgmStats::default();

    // Frequent-label filter (generalized size-1 support per concept).
    let label_ok: Vec<bool> = if config.prune_infrequent_labels {
        taxonomy
            .generalized_label_frequencies(db)
            .into_iter()
            .map(|f| f >= min_support)
            .collect()
    } else {
        vec![true; taxonomy.concept_count()]
    };

    let budget = config.memory_budget_bytes;
    let mut all_frequent: Vec<Entry> = Vec::new();
    let mut level = seed_level(db, taxonomy, &label_ok, min_support, budget, &mut stats)?;
    // AcGM generates size-k candidates by joining size-(k-1) frequent
    // graphs; the equivalent Apriori fact for one-edge extension is that
    // the added edge's own 1-edge pattern must be frequent. Collect the
    // frequent seed triples (both orientations) as that filter.
    let mut frequent_edges: HashSet<(NodeLabel, EdgeLabel, NodeLabel)> = HashSet::new();
    for e in &level {
        let g = &e.graph;
        let (a, b) = (g.label(0), g.label(1));
        let el = g.edges()[0].label;
        frequent_edges.insert((a, el, b));
        frequent_edges.insert((b, el, a));
    }
    let mut level_no = 1usize;
    loop {
        let level_bytes: usize = level.iter().map(Entry::bytes).sum();
        let retained_bytes: usize = all_frequent.iter().map(Entry::bytes).sum();
        let total = level_bytes + retained_bytes;
        stats.peak_bytes = stats.peak_bytes.max(total);
        if config.memory_budget_bytes.is_some_and(|b| total > b) {
            return Err(TacgmError::MemoryBudgetExceeded {
                level: level_no,
                bytes: total,
            });
        }
        if level.is_empty() {
            break;
        }
        stats.levels = level_no;
        stats.embeddings_stored += level.iter().map(|e| e.embeddings.len()).sum::<usize>();
        let grow = config.max_edges.is_none_or(|cap| level_no < cap);
        // The retained frequent set stays resident; only the remaining
        // budget is available to the next level's candidate pool.
        let next_budget = budget.map(|b| b.saturating_sub(retained_bytes + level_bytes));
        let next = if grow {
            extend_level(
                &level,
                db,
                taxonomy,
                &label_ok,
                &frequent_edges,
                min_support,
                level_no,
                next_budget,
                &mut stats,
            )?
        } else {
            Vec::new()
        };
        all_frequent.extend(level);
        level = next;
        level_no += 1;
    }

    // Post-processing: prune over-generalized patterns pairwise within
    // same-size groups.
    let patterns = if config.prune_overgeneralized {
        prune_overgeneralized(all_frequent, taxonomy, &mut stats)
    } else {
        all_frequent
            .into_iter()
            .map(|e| TacgmPattern { graph: e.graph, support_count: e.support })
            .collect()
    };
    Ok(TacgmResult {
        patterns,
        stats,
        min_support_count: min_support,
    })
}

/// Level 1: all generalized single-edge patterns.
///
/// Extensions are grouped by `(label_a, edge label, label_b)` before
/// touching the candidate pool, so graph construction and slot lookup
/// happen once per candidate pattern instead of once per embedding.
fn seed_level(
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    label_ok: &[bool],
    min_support: usize,
    budget: Option<usize>,
    stats: &mut TacgmStats,
) -> Result<Vec<Entry>, TacgmError> {
    let mut groups: HashMap<(u32, EdgeLabel, u32), Vec<Embedding>> = HashMap::new();
    for (gid, g) in db.iter() {
        for (eid, e) in g.edges().iter().enumerate() {
            for (a, b) in [(e.u, e.v), (e.v, e.u)] {
                for anc_a in taxonomy.ancestors(g.label(a)).iter() {
                    if !label_ok[anc_a] {
                        continue;
                    }
                    for anc_b in taxonomy.ancestors(g.label(b)).iter() {
                        if !label_ok[anc_b] {
                            continue;
                        }
                        groups
                            .entry((anc_a as u32, e.label, anc_b as u32))
                            .or_default()
                            .push(Embedding {
                                gid,
                                map: vec![a, b],
                                edges: vec![eid],
                            });
                    }
                }
            }
        }
    }
    let mut candidates: CandidateSet = CandidateSet::default();
    for ((la, el, lb), embs) in groups {
        let mut pat = LabeledGraph::with_nodes([NodeLabel(la), NodeLabel(lb)]);
        pat.add_edge(0, 1, el).expect("fresh two-node pattern"); // tsg-lint: allow(panic) — the single edge of a fresh two-node pattern cannot collide
        let bytes = candidates.add_batch(pat, embs);
        if budget.is_some_and(|bu| bytes > bu) {
            return Err(TacgmError::MemoryBudgetExceeded { level: 1, bytes });
        }
    }
    Ok(candidates.into_frequent(min_support, stats))
}

/// An extension of a fixed parent pattern, before labels are applied:
/// forward (`to == usize::MAX`, with a generalized label for the fresh
/// node) or backward (between two mapped pattern nodes).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct ExtSpec {
    from: usize,
    /// `usize::MAX` for forward extensions.
    to: usize,
    elabel: EdgeLabel,
    /// Generalized label of the fresh node (forward only; 0 for backward).
    new_label: u32,
}

/// Level k → k+1 by one-edge extension at every embedding.
#[allow(clippy::too_many_arguments)]
fn extend_level(
    level: &[Entry],
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    label_ok: &[bool],
    frequent_edges: &HashSet<(NodeLabel, EdgeLabel, NodeLabel)>,
    min_support: usize,
    level_no: usize,
    budget: Option<usize>,
    stats: &mut TacgmStats,
) -> Result<Vec<Entry>, TacgmError> {
    let mut candidates = CandidateSet::default();
    for entry in level {
        // Group grown embeddings by extension spec; one pattern graph and
        // one pool insertion per spec.
        let mut groups: HashMap<ExtSpec, Vec<Embedding>> = HashMap::new();
        for emb in &entry.embeddings {
            let g = db.graph(emb.gid);
            for (pnode, &gnode) in emb.map.iter().enumerate() {
                for adj in g.neighbors(gnode) {
                    if emb.edges.contains(&adj.edge) {
                        continue;
                    }
                    if let Some(other) = emb.map.iter().position(|&m| m == adj.to) {
                        // Backward: connect two mapped pattern nodes.
                        if pnode < other
                            && !entry.graph.has_edge(pnode, other)
                            && frequent_edges.contains(&(
                                entry.graph.label(pnode),
                                adj.elabel,
                                entry.graph.label(other),
                            ))
                        {
                            let mut e2 = emb.clone();
                            insert_sorted(&mut e2.edges, adj.edge);
                            groups
                                .entry(ExtSpec {
                                    from: pnode,
                                    to: other,
                                    elabel: adj.elabel,
                                    new_label: 0,
                                })
                                .or_default()
                                .push(e2);
                        }
                    } else {
                        // Forward: fresh node, generalized to every
                        // (frequent) ancestor of the observed label.
                        for anc in taxonomy.ancestors(g.label(adj.to)).iter() {
                            if !label_ok[anc]
                                || !frequent_edges.contains(&(
                                    entry.graph.label(pnode),
                                    adj.elabel,
                                    NodeLabel(anc as u32),
                                ))
                            {
                                continue;
                            }
                            let mut e2 = emb.clone();
                            e2.map.push(adj.to);
                            insert_sorted(&mut e2.edges, adj.edge);
                            groups
                                .entry(ExtSpec {
                                    from: pnode,
                                    to: usize::MAX,
                                    elabel: adj.elabel,
                                    new_label: anc as u32,
                                })
                                .or_default()
                                .push(e2);
                        }
                    }
                }
            }
        }
        for (spec, embs) in groups {
            let mut pat = entry.graph.clone();
            if spec.to == usize::MAX {
                let nn = pat.add_node(NodeLabel(spec.new_label));
                pat.add_edge(spec.from, nn, spec.elabel).expect("fresh node edge"); // tsg-lint: allow(panic) — edge to a just-added node cannot collide
            } else {
                pat.add_edge(spec.from, spec.to, spec.elabel)
                    .expect("backward absence checked during grouping"); // tsg-lint: allow(panic) — backward-edge absence was checked during grouping
            }
            let bytes = candidates.add_batch(pat, embs);
            if budget.is_some_and(|bu| bytes > bu) {
                return Err(TacgmError::MemoryBudgetExceeded {
                    level: level_no + 1,
                    bytes,
                });
            }
        }
    }
    Ok(candidates.into_frequent(min_support, stats))
}

/// Inserts `v` into a sorted vector, keeping it sorted.
fn insert_sorted(edges: &mut Vec<usize>, v: usize) {
    let pos = edges.partition_point(|&e| e < v);
    edges.insert(pos, v);
}

/// The cheap isomorphism-invariant signature of a candidate graph.
type Signature = (Vec<NodeLabel>, Vec<(EdgeLabel, NodeLabel, NodeLabel)>);
/// A candidate graph's exact (vertex-order-sensitive) identity.
type ExactKey = (Vec<NodeLabel>, Vec<(usize, usize, EdgeLabel)>);
/// A candidate slot plus the permutation remapping into its vertex order
/// (`None` = identity).
type SlotRef = (usize, Option<Vec<NodeId>>);

/// Candidate pool with isomorphism-level deduplication and per-candidate
/// embedding sets. Tracks its approximate heap footprint so the memory
/// budget can trip *during* candidate generation — a real 2008-sized heap
/// died mid-level, not between levels.
#[derive(Default)]
struct CandidateSet {
    approx_bytes: usize,
    /// Invariant signature → candidate indices (cheap pre-filter before
    /// the real isomorphism test).
    buckets: HashMap<Signature, Vec<usize>>,
    /// Exact graph → slot. Extensions of the thousands of embeddings of
    /// one parent all build the byte-identical pattern graph, so this
    /// memo turns almost every `add` into a hash lookup instead of an
    /// isomorphism search.
    exact: HashMap<ExactKey, SlotRef>,
    graphs: Vec<LabeledGraph>,
    /// Embeddings per candidate, possibly with duplicates when several
    /// parents regenerate the same one; deduplicated by sort in
    /// [`CandidateSet::into_frequent`]. Edge id lists are kept sorted so
    /// `(gid, edges, map)` is directly a dedup key. Note the key must be
    /// the *full* triple: under generalized matching two distinct
    /// embeddings can share an edge set without being pattern-automorphic
    /// (e.g. pattern `n1—n2` maps onto an `n2—n2` edge both ways), and
    /// each can ground different extensions, so nothing coarser is sound.
    embeddings: Vec<Vec<Embedding>>,
}

impl CandidateSet {
    /// Adds a batch of embeddings of one candidate graph (all expressed
    /// in `pat`'s vertex order); returns the pool's approximate bytes.
    fn add_batch(&mut self, pat: LabeledGraph, embs: Vec<Embedding>) -> usize {
        let exact_key = (
            pat.labels().to_vec(),
            pat.edges().iter().map(|e| (e.u, e.v, e.label)).collect::<Vec<_>>(),
        );
        let (idx, sigma) = match self.exact.get(&exact_key) {
            Some((i, sigma)) => (*i, sigma.clone()),
            None => {
                let sig = pat.invariant_signature();
                let bucket = self.buckets.entry(sig).or_default();
                let slot = match bucket.iter().find(|&&i| is_isomorphic(&self.graphs[i], &pat)) {
                    Some(&i) => {
                        // The embeddings arrived in `pat`'s vertex order;
                        // σ (slot node k ↔ pat node σ[k]) remaps them into
                        // the slot's order, otherwise later extensions
                        // would read labels at the wrong vertices.
                        let sigma = tsg_iso::find_embedding(
                            &self.graphs[i],
                            &pat,
                            &tsg_iso::ExactMatcher,
                        )
                        .expect("is_isomorphic just confirmed a bijection exists"); // tsg-lint: allow(panic) — is_isomorphic just confirmed a bijection exists
                        (i, Some(sigma))
                    }
                    None => {
                        self.graphs.push(pat);
                        self.embeddings.push(Vec::new());
                        let i = self.graphs.len() - 1;
                        bucket.push(i);
                        (i, None)
                    }
                };
                self.exact.insert(exact_key, slot.clone());
                slot
            }
        };
        let slot = &mut self.embeddings[idx];
        for mut emb in embs {
            if let Some(sigma) = &sigma {
                emb.map = sigma.iter().map(|&p| emb.map[p]).collect();
            }
            debug_assert!(emb.edges.windows(2).all(|w| w[0] < w[1]), "edge lists stay sorted");
            self.approx_bytes +=
                (emb.edges.len() + emb.map.len() + 2) * std::mem::size_of::<usize>();
            slot.push(emb);
        }
        self.approx_bytes
    }

    fn into_frequent(self, min_support: usize, stats: &mut TacgmStats) -> Vec<Entry> {
        stats.candidates += self.graphs.len();
        let mut out = Vec::new();
        for (graph, mut embeddings) in self.graphs.into_iter().zip(self.embeddings) {
            embeddings.sort_unstable_by(|a, b| {
                (a.gid, &a.edges, &a.map).cmp(&(b.gid, &b.edges, &b.map))
            });
            embeddings.dedup_by(|a, b| a.gid == b.gid && a.edges == b.edges && a.map == b.map);
            let mut support = 0;
            let mut last = usize::MAX;
            for e in &embeddings {
                if e.gid != last {
                    support += 1;
                    last = e.gid;
                }
            }
            if support >= min_support {
                out.push(Entry {
                    graph,
                    embeddings,
                    support,
                });
            }
        }
        out
    }
}

/// Final pass: drop every pattern with an equally-supported, structurally
/// identical, strictly more specific companion.
fn prune_overgeneralized(
    frequent: Vec<Entry>,
    taxonomy: &Taxonomy,
    stats: &mut TacgmStats,
) -> Vec<TacgmPattern> {
    let mut keep = vec![true; frequent.len()];
    for i in 0..frequent.len() {
        for j in 0..frequent.len() {
            if i == j || !keep[i] {
                continue;
            }
            let (p, q) = (&frequent[i], &frequent[j]);
            if p.support != q.support
                || p.graph.node_count() != q.graph.node_count()
                || p.graph.edge_count() != q.graph.edge_count()
            {
                continue;
            }
            if is_gen_iso(&p.graph, &q.graph, taxonomy) && !is_isomorphic(&p.graph, &q.graph) {
                keep[i] = false;
                stats.overgeneralized += 1;
            }
        }
    }
    frequent
        .into_iter()
        .zip(keep)
        .filter_map(|(e, k)| {
            k.then_some(TacgmPattern {
                graph: e.graph,
                support_count: e.support,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_taxonomy::samples;

    #[test]
    fn rejects_bad_threshold() {
        let (_, t) = samples::sample_taxonomy();
        let db = GraphDatabase::new();
        let err = mine(&db, &t, &TacgmConfig::with_threshold(-1.0)).unwrap_err();
        assert!(matches!(err, TacgmError::InvalidThreshold { .. }));
    }

    #[test]
    fn finds_generalized_patterns_on_fixture() {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let r = mine(&db, &t, &TacgmConfig::with_threshold(1.0)).unwrap();
        assert!(!r.patterns.is_empty());
        for p in &r.patterns {
            assert_eq!(p.support_count, 3);
        }
        assert!(r.stats.candidates > 0);
        assert!(r.stats.embeddings_stored > 0);
    }

    #[test]
    fn agrees_with_taxogram_on_fixture() {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        for theta in [1.0, 2.0 / 3.0, 1.0 / 3.0] {
            let tac = mine(&db, &t, &TacgmConfig::with_threshold(theta)).unwrap();
            let tax = taxogram_core::Taxogram::new(
                taxogram_core::TaxogramConfig::with_threshold(theta),
            )
            .mine(&db, &t)
            .unwrap();
            assert_eq!(tac.patterns.len(), tax.patterns.len(), "θ = {theta}");
            for p in &tac.patterns {
                let m = tax
                    .patterns
                    .iter()
                    .find(|q| is_isomorphic(&p.graph, &q.graph))
                    .unwrap_or_else(|| panic!("taxogram missing {:?}", p.graph.labels()));
                assert_eq!(p.support_count, m.support_count);
            }
        }
    }

    #[test]
    fn memory_budget_trips() {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let err = mine(
            &db,
            &t,
            &TacgmConfig::with_threshold(1.0 / 3.0).memory_budget(64),
        )
        .unwrap_err();
        assert!(matches!(err, TacgmError::MemoryBudgetExceeded { .. }));
        let msg = err.to_string();
        assert!(msg.contains("memory budget"));
    }

    #[test]
    fn max_edges_caps_levels() {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let r = mine(&db, &t, &TacgmConfig::with_threshold(1.0 / 3.0).max_edges(1)).unwrap();
        assert!(r.patterns.iter().all(|p| p.graph.edge_count() == 1));
        assert!(r.stats.levels <= 1);
    }

    #[test]
    fn embeddings_stored_exceeds_taxogram_occurrences() {
        // The redundancy claim of Example 1.2: TAcGM stores each
        // occurrence once per generalization level, Taxogram once per
        // class.
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let tac = mine(&db, &t, &TacgmConfig::with_threshold(1.0 / 3.0)).unwrap();
        let tax = taxogram_core::Taxogram::new(taxogram_core::TaxogramConfig::with_threshold(
            1.0 / 3.0,
        ))
        .mine(&db, &t)
        .unwrap();
        assert!(
            tac.stats.embeddings_stored > tax.stats.occurrences,
            "TAcGM {} vs Taxogram {}",
            tac.stats.embeddings_stored,
            tax.stats.occurrences
        );
    }
}
