//! Three-way cross-validation on random inputs: TAcGM (bottom-up,
//! level-wise), Taxogram (top-down, occurrence indices), and the
//! brute-force reference must produce identical pattern sets.

use proptest::prelude::*;
use taxogram_core::reference::reference_mine;
use taxogram_core::{Taxogram, TaxogramConfig};
use tsg_graph::{EdgeLabel, GraphDatabase, LabeledGraph, NodeLabel};
use tsg_iso::is_isomorphic;
use tsg_tacgm::{mine, TacgmConfig};
use tsg_taxonomy::{Taxonomy, TaxonomyBuilder};

fn arb_taxonomy(max_concepts: usize) -> impl Strategy<Value = Taxonomy> {
    (2..=max_concepts)
        .prop_flat_map(|n| {
            let parent_choices: Vec<_> = (1..n)
                .map(|i| prop::collection::vec(0..i, 1..=2.min(i)))
                .collect();
            (Just(n), parent_choices)
        })
        .prop_map(|(n, parents)| {
            let mut b = TaxonomyBuilder::with_concepts(n);
            for (i, ps) in parents.into_iter().enumerate() {
                let child = NodeLabel((i + 1) as u32);
                let mut seen = vec![];
                for p in ps {
                    if !seen.contains(&p) {
                        seen.push(p);
                        b.is_a(child, NodeLabel(p as u32)).unwrap();
                    }
                }
            }
            b.build().expect("acyclic by construction")
        })
}

fn arb_graph(concepts: usize, max_nodes: usize) -> impl Strategy<Value = LabeledGraph> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            let labels = prop::collection::vec(0..concepts, n);
            let chain = prop::collection::vec(0..2u32, n - 1);
            let extras = prop::collection::vec(((0..n), (0..n), 0..2u32), 0..=2);
            (labels, chain, extras)
        })
        .prop_map(|(labels, chain, extras)| {
            let mut g = LabeledGraph::with_nodes(labels.iter().map(|&l| NodeLabel(l as u32)));
            for (i, &el) in chain.iter().enumerate() {
                g.add_edge(i, i + 1, EdgeLabel(el)).unwrap();
            }
            for (u, v, el) in extras {
                if u != v {
                    let _ = g.add_edge(u, v, EdgeLabel(el));
                }
            }
            g
        })
}

fn arb_input() -> impl Strategy<Value = (Taxonomy, GraphDatabase)> {
    arb_taxonomy(5).prop_flat_map(|t| {
        let n = t.concept_count();
        let db =
            prop::collection::vec(arb_graph(n, 4), 2..=4).prop_map(GraphDatabase::from_graphs);
        (Just(t), db)
    })
}

fn assert_same_patterns(
    label_a: &str,
    a: &[(LabeledGraph, usize)],
    label_b: &str,
    b: &[(LabeledGraph, usize)],
) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!(
            "{label_a} found {} patterns, {label_b} found {}:\n  {label_a}: {:?}\n  {label_b}: {:?}",
            a.len(),
            b.len(),
            a.iter().map(|(g, s)| (g.labels().to_vec(), g.edge_count(), *s)).collect::<Vec<_>>(),
            b.iter().map(|(g, s)| (g.labels().to_vec(), g.edge_count(), *s)).collect::<Vec<_>>(),
        ));
    }
    let mut used = vec![false; b.len()];
    for (pg, ps) in a {
        match b.iter().enumerate().find(|(i, (qg, qs))| {
            !used[*i] && qs == ps && is_isomorphic(pg, qg)
        }) {
            Some((i, _)) => used[i] = true,
            None => {
                return Err(format!(
                    "{label_a} pattern {:?} (sup {ps}) missing from {label_b}",
                    pg.labels()
                ))
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tacgm_taxogram_reference_agree(
        (taxonomy, db) in arb_input(),
        theta in prop::sample::select(vec![1.0f64, 0.6, 0.4]),
    ) {
        let max_edges = 3;
        let reference = reference_mine(&db, &taxonomy, theta, max_edges);
        let tac = mine(
            &db,
            &taxonomy,
            &TacgmConfig::with_threshold(theta).max_edges(max_edges),
        )
        .expect("no memory budget set");
        let tac_set: Vec<_> = tac
            .patterns
            .into_iter()
            .map(|p| (p.graph, p.support_count))
            .collect();
        let tax = Taxogram::new(TaxogramConfig::with_threshold(theta).max_edges(max_edges))
            .mine(&db, &taxonomy)
            .unwrap();
        let tax_set: Vec<_> = tax
            .patterns
            .into_iter()
            .map(|p| (p.graph, p.support_count))
            .collect();
        if let Err(msg) = assert_same_patterns("tacgm", &tac_set, "reference", &reference) {
            let dump = tsg_graph::io::write_database(&db);
            prop_assert!(false, "θ={theta}: {msg}\ntaxonomy: {:?}\n{dump}", taxonomy.edge_list());
        }
        if let Err(msg) = assert_same_patterns("taxogram", &tax_set, "tacgm", &tac_set) {
            let dump = tsg_graph::io::write_database(&db);
            prop_assert!(false, "θ={theta}: {msg}\ntaxonomy: {:?}\n{dump}", taxonomy.edge_list());
        }
    }
}
