//! Three-way cross-validation on random inputs: TAcGM (bottom-up,
//! level-wise), Taxogram (top-down, occurrence indices), and the
//! brute-force reference must produce identical pattern sets.
//!
//! Inputs come from the shared [`tsg_testkit::gen`] generators (the
//! strategies formerly copy-pasted here live there now).

use proptest::prelude::*;
use taxogram_core::reference::reference_mine;
use taxogram_core::{Taxogram, TaxogramConfig};
use tsg_graph::{EdgeLabel, GraphDatabase, LabeledGraph, NodeLabel};
use tsg_iso::is_isomorphic;
use tsg_tacgm::{mine, TacgmConfig};
use tsg_taxonomy::Taxonomy;
use tsg_testkit::gen::{arb_input, arb_theta};

fn assert_same_patterns(
    label_a: &str,
    a: &[(LabeledGraph, usize)],
    label_b: &str,
    b: &[(LabeledGraph, usize)],
) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!(
            "{label_a} found {} patterns, {label_b} found {}:\n  {label_a}: {:?}\n  {label_b}: {:?}",
            a.len(),
            b.len(),
            a.iter().map(|(g, s)| (g.labels().to_vec(), g.edge_count(), *s)).collect::<Vec<_>>(),
            b.iter().map(|(g, s)| (g.labels().to_vec(), g.edge_count(), *s)).collect::<Vec<_>>(),
        ));
    }
    let mut used = vec![false; b.len()];
    for (pg, ps) in a {
        match b.iter().enumerate().find(|(i, (qg, qs))| {
            !used[*i] && qs == ps && is_isomorphic(pg, qg)
        }) {
            Some((i, _)) => used[i] = true,
            None => {
                return Err(format!(
                    "{label_a} pattern {:?} (sup {ps}) missing from {label_b}",
                    pg.labels()
                ))
            }
        }
    }
    Ok(())
}

/// The three-way check the property test and the promoted regression
/// cases share. Panics with a full input dump on divergence.
fn check_three_way(taxonomy: &Taxonomy, db: &GraphDatabase, theta: f64) -> Result<(), String> {
    let max_edges = 3;
    let reference = reference_mine(db, taxonomy, theta, max_edges);
    let tac = mine(
        db,
        taxonomy,
        &TacgmConfig::with_threshold(theta).max_edges(max_edges),
    )
    .expect("no memory budget set");
    let tac_set: Vec<_> = tac
        .patterns
        .into_iter()
        .map(|p| (p.graph, p.support_count))
        .collect();
    let tax = Taxogram::new(TaxogramConfig::with_threshold(theta).max_edges(max_edges))
        .mine(db, taxonomy)
        .unwrap();
    let tax_set: Vec<_> = tax
        .patterns
        .into_iter()
        .map(|p| (p.graph, p.support_count))
        .collect();
    assert_same_patterns("tacgm", &tac_set, "reference", &reference)?;
    assert_same_patterns("taxogram", &tax_set, "tacgm", &tac_set)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tacgm_taxogram_reference_agree(
        (taxonomy, db) in arb_input(),
        theta in arb_theta(),
    ) {
        if let Err(msg) = check_three_way(&taxonomy, &db, theta) {
            let dump = tsg_graph::io::write_database(&db);
            prop_assert!(false, "θ={theta}: {msg}\ntaxonomy: {:?}\n{dump}", taxonomy.edge_list());
        }
    }
}

/// A labeled path graph: `labels[i]` at vertex `i`, edge `i—i+1` with
/// label `elabels[i]`.
fn path(labels: &[u32], elabels: &[u32]) -> LabeledGraph {
    let mut g = LabeledGraph::with_nodes(labels.iter().map(|&l| NodeLabel(l)));
    for (i, &el) in elabels.iter().enumerate() {
        g.add_edge(i, i + 1, EdgeLabel(el)).unwrap();
    }
    g
}

/// Promoted from `three_way_agreement.proptest-regressions` (first
/// shrunk case): a two-concept taxonomy (n1 is-a n0) and a database
/// where the generalization n0–n0 ties its specialization's support at
/// θ = 0.4 — the minimality filter must keep exactly one of them.
#[test]
fn regression_two_concepts_equal_support_generalization() {
    let taxonomy = tsg_taxonomy::taxonomy_from_edges(2, [(1, 0)]).unwrap();
    let db = GraphDatabase::from_graphs(vec![
        path(&[0, 0], &[0]),
        path(&[0, 1, 0], &[0, 0]),
    ]);
    check_three_way(&taxonomy, &db, 0.4).unwrap();
}

/// Promoted from `three_way_agreement.proptest-regressions` (second
/// shrunk case): a three-deep chain taxonomy (n2 is-a n1 is-a n0) with
/// two path graphs whose shared suffix generalizes at different depths;
/// θ = 0.6 makes the mid-level concept the minimal frequent one.
#[test]
fn regression_three_chain_mid_level_minimal() {
    let taxonomy = tsg_taxonomy::taxonomy_from_edges(3, [(1, 0), (2, 1)]).unwrap();
    let db = GraphDatabase::from_graphs(vec![
        path(&[2, 2, 1, 0], &[1, 0, 0]),
        path(&[2, 1, 0], &[1, 0]),
    ]);
    check_three_way(&taxonomy, &db, 0.6).unwrap();
}
