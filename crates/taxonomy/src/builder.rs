//! Incremental construction and validation of taxonomies.

use crate::{Taxonomy, TaxonomyError};
use tsg_graph::NodeLabel;

/// Builds a [`Taxonomy`] from declared concepts and is-a edges, validating
/// acyclicity at [`TaxonomyBuilder::build`] time.
///
/// ```
/// use tsg_taxonomy::TaxonomyBuilder;
/// use tsg_graph::NodeLabel;
///
/// let mut b = TaxonomyBuilder::new();
/// let animal = b.add_concept();
/// let dog = b.add_concept();
/// b.is_a(dog, animal).unwrap();
/// let t = b.build().unwrap();
/// assert!(t.is_ancestor(animal, dog));
/// assert!(t.is_ancestor(dog, dog), "ancestorship is reflexive");
/// assert!(!t.is_ancestor(dog, animal));
/// ```
#[derive(Clone, Debug, Default)]
pub struct TaxonomyBuilder {
    parents: Vec<Vec<NodeLabel>>,
    children: Vec<Vec<NodeLabel>>,
}

impl TaxonomyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TaxonomyBuilder::default()
    }

    /// Creates a builder with `n` concepts already declared (ids `0..n`).
    pub fn with_concepts(n: usize) -> Self {
        TaxonomyBuilder {
            parents: vec![Vec::new(); n],
            children: vec![Vec::new(); n],
        }
    }

    /// Declares a fresh concept and returns its id.
    pub fn add_concept(&mut self) -> NodeLabel {
        self.parents.push(Vec::new());
        self.children.push(Vec::new());
        NodeLabel((self.parents.len() - 1) as u32)
    }

    /// Number of concepts declared so far.
    pub fn concept_count(&self) -> usize {
        self.parents.len()
    }

    /// Declares `child is-a parent` (paper: an edge from `child` to
    /// `parent`, `parent` being the ancestor).
    ///
    /// # Errors
    /// Rejects unknown concepts, self-edges, and duplicate edges. Cycles are
    /// detected later, in [`TaxonomyBuilder::build`].
    pub fn is_a(&mut self, child: NodeLabel, parent: NodeLabel) -> Result<(), TaxonomyError> {
        let len = self.parents.len();
        for &c in &[child, parent] {
            if c.index() >= len {
                return Err(TaxonomyError::UnknownConcept { concept: c, len });
            }
        }
        if child == parent {
            return Err(TaxonomyError::SelfIsA { concept: child });
        }
        if self.parents[child.index()].contains(&parent) { // tsg-lint: allow(index) — both concepts bounds-checked against len above
            return Err(TaxonomyError::DuplicateIsA { child, parent });
        }
        self.parents[child.index()].push(parent); // tsg-lint: allow(index) — both concepts bounds-checked against len above
        self.children[parent.index()].push(child); // tsg-lint: allow(index) — both concepts bounds-checked against len above
        Ok(())
    }

    /// Validates and finalizes the taxonomy, computing ancestor/descendant
    /// closures and depths.
    ///
    /// # Errors
    /// Returns [`TaxonomyError::Empty`] for zero concepts and
    /// [`TaxonomyError::Cycle`] if the is-a relation is cyclic.
    pub fn build(self) -> Result<Taxonomy, TaxonomyError> {
        Taxonomy::from_relations(&self.parents, &self.children)
    }
}

/// Convenience: builds a taxonomy from `(child, parent)` pairs over concepts
/// `0..n`.
///
/// # Errors
/// Propagates any [`TaxonomyError`] from declaration or validation.
pub fn taxonomy_from_edges(
    n: usize,
    edges: impl IntoIterator<Item = (u32, u32)>,
) -> Result<Taxonomy, TaxonomyError> {
    let mut b = TaxonomyBuilder::with_concepts(n);
    for (c, p) in edges {
        b.is_a(NodeLabel(c), NodeLabel(p))?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_unknown_self_and_duplicate_edges() {
        let mut b = TaxonomyBuilder::with_concepts(2);
        assert_eq!(
            b.is_a(NodeLabel(0), NodeLabel(7)),
            Err(TaxonomyError::UnknownConcept {
                concept: NodeLabel(7),
                len: 2
            })
        );
        assert_eq!(
            b.is_a(NodeLabel(1), NodeLabel(1)),
            Err(TaxonomyError::SelfIsA { concept: NodeLabel(1) })
        );
        b.is_a(NodeLabel(1), NodeLabel(0)).unwrap();
        assert_eq!(
            b.is_a(NodeLabel(1), NodeLabel(0)),
            Err(TaxonomyError::DuplicateIsA {
                child: NodeLabel(1),
                parent: NodeLabel(0)
            })
        );
    }

    #[test]
    fn build_detects_cycles() {
        // 0 -> 1 -> 2 -> 0
        let t = taxonomy_from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert!(matches!(t, Err(TaxonomyError::Cycle { .. })));
        // Two-cycle.
        let t = taxonomy_from_edges(2, [(0, 1), (1, 0)]);
        assert!(matches!(t, Err(TaxonomyError::Cycle { .. })));
    }

    #[test]
    fn build_rejects_empty() {
        assert_eq!(TaxonomyBuilder::new().build().unwrap_err(), TaxonomyError::Empty);
    }

    #[test]
    fn dag_with_shared_child_is_fine() {
        // Diamond: 3 is-a 1, 3 is-a 2, 1 is-a 0, 2 is-a 0.
        let t = taxonomy_from_edges(4, [(3, 1), (3, 2), (1, 0), (2, 0)]).unwrap();
        assert_eq!(t.concept_count(), 4);
        assert!(t.is_ancestor(NodeLabel(0), NodeLabel(3)));
        assert_eq!(t.roots(), &[NodeLabel(0)]);
    }
}
