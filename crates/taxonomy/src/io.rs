//! A line-oriented text format for taxonomies, mirroring the graph
//! database format of [`tsg_graph::io`]:
//!
//! ```text
//! # a taxonomy with 3 concepts
//! c 0 molecular-function     # concept 0, optional name
//! c 1 transporter
//! c 2 carrier
//! p 1 0                      # 1 is-a 0
//! p 2 1
//! ```
//!
//! Concept ids must be dense and ascending from 0. Names are optional and
//! returned through a [`LabelTable`]; unnamed concepts get the name
//! `concept-<id>`.

use crate::{Taxonomy, TaxonomyBuilder, TaxonomyError};
use std::fmt::Write as _;
use tsg_graph::{GraphError, LabelTable, NodeLabel};

/// Serializes a taxonomy (with optional names) to the `c`/`p` format.
pub fn write_taxonomy(taxonomy: &Taxonomy, names: Option<&LabelTable>) -> String {
    let mut out = String::new();
    for c in taxonomy.concepts() {
        match names.and_then(|n| n.name(c)) {
            Some(name) => {
                let _ = writeln!(out, "c {c} {name}");
            }
            None => {
                let _ = writeln!(out, "c {c}");
            }
        }
    }
    for (child, parent) in taxonomy.edge_list() {
        let _ = writeln!(out, "p {child} {parent}");
    }
    out
}

/// Parses a taxonomy from the `c`/`p` format.
///
/// # Errors
/// Returns [`GraphError::Parse`] for malformed records; taxonomy-level
/// problems (cycles, duplicate edges) surface as a parse error carrying
/// the underlying [`TaxonomyError`] message.
pub fn read_taxonomy(text: &str) -> Result<(LabelTable, Taxonomy), GraphError> {
    let mut names = LabelTable::new();
    let mut builder = TaxonomyBuilder::new();
    let mut edges: Vec<(NodeLabel, NodeLabel, usize)> = Vec::new();

    let parse = |line: usize, msg: &str| GraphError::Parse {
        line,
        msg: msg.to_owned(),
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        // Allow trailing comments.
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        match parts.next() {
            Some("c") => {
                let id: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse(lineno, "bad concept id"))?;
                if id != builder.concept_count() {
                    return Err(parse(
                        lineno,
                        &format!(
                            "concept ids must be dense: expected {}, got {id}",
                            builder.concept_count()
                        ),
                    ));
                }
                // The name is the rest of the line (spaces allowed), not
                // just the next token — truncating "molecular function"
                // to "molecular" both loses data and manufactures bogus
                // duplicate-name collisions.
                let rest: Vec<&str> = parts.collect();
                let name = (!rest.is_empty()).then(|| rest.join(" "));
                let declared = builder.add_concept();
                let interned =
                    names.intern(&name.unwrap_or_else(|| format!("concept-{id}")));
                if declared != interned {
                    return Err(parse(lineno, "duplicate concept name"));
                }
            }
            Some("p") => {
                let mut int = || -> Result<u32, GraphError> {
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| parse(lineno, "bad is-a field"))
                };
                let child = NodeLabel(int()?);
                let parent = NodeLabel(int()?);
                if parts.next().is_some() {
                    return Err(parse(lineno, "trailing tokens after is-a record"));
                }
                edges.push((child, parent, lineno));
            }
            Some(other) => return Err(parse(lineno, &format!("unknown record type {other:?}"))),
            None => unreachable!("empty lines filtered above"), // tsg-lint: allow(panic) — empty lines are filtered before the match
        }
    }
    for (child, parent, lineno) in edges {
        builder.is_a(child, parent).map_err(|e| GraphError::Parse {
            line: lineno,
            msg: e.to_string(),
        })?;
    }
    let taxonomy = builder.build().map_err(|e: TaxonomyError| GraphError::Parse {
        line: 0,
        msg: e.to_string(),
    })?;
    Ok((names, taxonomy))
}

/// Renders a taxonomy as a directed DOT document (edges point child →
/// parent, the paper's is-a direction).
pub fn to_dot(taxonomy: &Taxonomy, name: &str, names: Option<&LabelTable>) -> String {
    use std::fmt::Write as _;
    let ident: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, "digraph {ident} {{");
    let _ = writeln!(out, "  rankdir=BT;");
    let _ = writeln!(out, "  node [shape=box, fontsize=11];");
    for c in taxonomy.concepts() {
        let label = names
            .and_then(|n| n.name(c))
            .map(str::to_owned)
            .unwrap_or_else(|| c.to_string());
        let style = if taxonomy.is_artificial(c) { ", style=dashed" } else { "" };
        let _ = writeln!(
            out,
            "  c{c} [label=\"{}\"{style}];",
            label.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    for (child, parent) in taxonomy.edge_list() {
        let _ = writeln!(out, "  c{child} -> c{parent};");
    }
    out.push_str("}\n");
    out
}

/// An NCBI taxonomy loaded from `nodes.dmp`: the is-a structure plus the
/// original NCBI tax-ids and ranks, with a lookup index from tax-id to
/// dense concept id.
#[derive(Clone, Debug)]
pub struct NcbiTaxonomy {
    /// The parsed taxonomy; concept ids are dense in file order.
    pub taxonomy: Taxonomy,
    /// NCBI tax-id per concept id.
    pub tax_ids: Vec<u64>,
    /// Rank string per concept id (e.g. `species`, `genus`, `no rank`).
    pub ranks: Vec<String>,
    /// Lookup from NCBI tax-id to dense concept id.
    pub index: std::collections::HashMap<u64, NodeLabel>,
}

/// Parses the NCBI taxonomy `nodes.dmp` format: one node per line, fields
/// separated by `\t|\t` and lines terminated with `\t|`. Only the first
/// three fields are read — `tax_id | parent tax_id | rank` — and the
/// parser is tolerant of plain `|` separators and missing trailing
/// terminators. The root node is self-parented in the dump (`1 | 1`) and
/// becomes a taxonomy root rather than a self-is-a error.
///
/// Concept ids are assigned densely in file order, so a round-trip
/// through [`NcbiTaxonomy::index`] recovers the original tax-ids.
///
/// # Errors
/// Returns [`GraphError::Parse`] with a line number for short records,
/// non-numeric ids, duplicate tax-ids, parents that never appear in the
/// file, or is-a cycles.
pub fn read_ncbi_nodes(text: &str) -> Result<NcbiTaxonomy, GraphError> {
    let parse = |line: usize, msg: String| GraphError::Parse { line, msg };

    let mut tax_ids: Vec<u64> = Vec::new();
    let mut parent_ids: Vec<u64> = Vec::new();
    let mut ranks: Vec<String> = Vec::new();
    let mut index: std::collections::HashMap<u64, NodeLabel> =
        std::collections::HashMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let mut fields = raw.split('|').map(str::trim);
        let mut int = |what: &str| -> Result<u64, GraphError> {
            let field = fields
                .next()
                .ok_or_else(|| parse(lineno, format!("missing {what} field")))?;
            field
                .parse()
                .map_err(|_| parse(lineno, format!("bad {what} {field:?}")))
        };
        let tax_id = int("tax_id")?;
        let parent = int("parent tax_id")?;
        let rank = fields.next().unwrap_or("no rank").to_owned();
        let concept = NodeLabel(tax_ids.len() as u32);
        if index.insert(tax_id, concept).is_some() {
            return Err(parse(lineno, format!("duplicate tax_id {tax_id}")));
        }
        tax_ids.push(tax_id);
        parent_ids.push(parent);
        ranks.push(rank);
    }

    let mut builder = TaxonomyBuilder::with_concepts(tax_ids.len());
    for (i, &parent) in parent_ids.iter().enumerate() {
        if parent == tax_ids[i] { // tsg-lint: allow(index) — i enumerates parent_ids, built in lockstep with tax_ids
            continue; // the dump's self-parented root
        }
        let Some(&p) = index.get(&parent) else {
            return Err(parse(
                i + 1,
                format!("parent tax_id {parent} never declared"),
            ));
        };
        builder
            .is_a(NodeLabel(i as u32), p)
            .map_err(|e| parse(i + 1, e.to_string()))?;
    }
    let taxonomy = builder
        .build()
        .map_err(|e| parse(0, e.to_string()))?;
    Ok(NcbiTaxonomy { taxonomy, tax_ids, ranks, index })
}

/// Parses the NCBI `names.dmp` format and returns a [`LabelTable`] whose
/// entries line up with the dense concept ids of a taxonomy previously
/// loaded via [`read_ncbi_nodes`] — `table.name(concept)` is the display
/// name of that concept.
///
/// The format is one name record per line, `tax_id | name_txt |
/// unique name | name class`, with the same `\t|\t` separators and `\t|`
/// terminator as `nodes.dmp` (plain `|` separators are tolerated too).
/// A tax-id usually carries several records — synonyms, common names,
/// authorities — of which exactly one per id has the class
/// `scientific name`; that one is chosen, falling back to the first
/// record seen when a trimmed dump carries no scientific name.
///
/// [`LabelTable`] requires names to be unique, while NCBI scientific
/// names occasionally collide across tax-ids. Collisions are resolved in
/// concept order: the first holder keeps the plain name, later ones use
/// the record's `unique name` field when it is present and itself
/// unused, else `"<name> (<tax_id>)"`. Concepts with no record at all
/// (again, trimmed dumps) are named `taxid-<id>`. Records for tax-ids
/// absent from `ncbi` are skipped, so a names dump may be a superset of
/// the nodes dump.
///
/// # Errors
/// Returns [`GraphError::Parse`] with a line number for records missing
/// the name field, an empty `name_txt`, or a non-numeric tax-id, and a
/// line-0 error if disambiguation still cannot make a name unique.
pub fn read_ncbi_names(text: &str, ncbi: &NcbiTaxonomy) -> Result<LabelTable, GraphError> {
    let parse = |line: usize, msg: String| GraphError::Parse { line, msg };

    // tax_id → (name, unique name, saw-scientific-class).
    let mut chosen: std::collections::HashMap<u64, (String, String, bool)> =
        std::collections::HashMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let mut fields = raw.split('|').map(str::trim);
        let tax_field = fields.next().unwrap_or("");
        let tax_id: u64 = tax_field
            .parse()
            .map_err(|_| parse(lineno, format!("bad tax_id {tax_field:?}")))?;
        let name_txt = fields
            .next()
            .ok_or_else(|| parse(lineno, "missing name_txt field".to_owned()))?;
        if name_txt.is_empty() {
            return Err(parse(lineno, "empty name_txt".to_owned()));
        }
        let unique = fields.next().unwrap_or("");
        let class = fields.next().unwrap_or("");
        if !ncbi.index.contains_key(&tax_id) {
            continue;
        }
        let scientific = class == "scientific name";
        match chosen.entry(tax_id) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if scientific && !e.get().2 {
                    e.insert((name_txt.to_owned(), unique.to_owned(), true));
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((name_txt.to_owned(), unique.to_owned(), scientific));
            }
        }
    }

    let mut names = LabelTable::new();
    for (i, &tax_id) in ncbi.tax_ids.iter().enumerate() {
        let (mut name, unique, _) = chosen
            .remove(&tax_id)
            .unwrap_or_else(|| (format!("taxid-{tax_id}"), String::new(), false));
        if names.get(&name).is_some() {
            name = if !unique.is_empty() && names.get(unique.as_str()).is_none() {
                unique
            } else {
                format!("{name} ({tax_id})")
            };
        }
        let interned = names.intern(&name);
        if interned != NodeLabel(i as u32) {
            return Err(parse(
                0,
                format!("cannot disambiguate name {name:?} for tax_id {tax_id}"),
            ));
        }
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    #[test]
    fn roundtrip_with_names() {
        let (names, taxonomy, _) = samples::go_excerpt();
        let text = write_taxonomy(&taxonomy, Some(&names));
        let (names2, t2) = read_taxonomy(&text).unwrap();
        assert_eq!(t2.concept_count(), taxonomy.concept_count());
        assert_eq!(t2.relationship_count(), taxonomy.relationship_count());
        for c in taxonomy.concepts() {
            assert_eq!(t2.ancestors(c).to_vec(), taxonomy.ancestors(c).to_vec());
            // Names survive verbatim, spaces included.
            assert_eq!(names2.name(c), names.name(c));
        }
    }

    #[test]
    fn roundtrip_without_names() {
        let (_, taxonomy) = samples::sample_taxonomy();
        let text = write_taxonomy(&taxonomy, None);
        let (names, t2) = read_taxonomy(&text).unwrap();
        assert_eq!(t2.concept_count(), taxonomy.concept_count());
        assert_eq!(names.name(tsg_graph::NodeLabel(0)), Some("concept-0"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\nc 0 root\n\nc 1 kid # trailing\np 1 0\n";
        let (names, t) = read_taxonomy(text).unwrap();
        assert_eq!(t.concept_count(), 2);
        assert_eq!(names.get("kid"), Some(tsg_graph::NodeLabel(1)));
        assert!(t.is_ancestor(tsg_graph::NodeLabel(0), tsg_graph::NodeLabel(1)));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = read_taxonomy("c 5 x\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = read_taxonomy("c 0 x\np 0 0\n").unwrap_err();
        match err {
            GraphError::Parse { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("own parent"), "{msg}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Cycle is reported at build time (line 0).
        let err = read_taxonomy("c 0 x\nc 1 y\np 0 1\np 1 0\n").unwrap_err();
        match err {
            GraphError::Parse { msg, .. } => assert!(msg.contains("cycle"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
        let err = read_taxonomy("z 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    /// A hand-trimmed `nodes.dmp` excerpt in the real NCBI shape:
    /// `tax_id \t|\t parent \t|\t rank \t|\t ...trailing fields... \t|`.
    const NODES_DMP: &str = "\
1\t|\t1\t|\tno rank\t|\t\t|\t8\t|\t0\t|\t1\t|\t0\t|\t0\t|\t0\t|\t0\t|\t0\t|\t\t|
131567\t|\t1\t|\tno rank\t|\t\t|\t8\t|\t1\t|\t1\t|\t0\t|\t0\t|\t0\t|\t0\t|\t0\t|\t\t|
2\t|\t131567\t|\tsuperkingdom\t|\t\t|\t0\t|\t0\t|\t11\t|\t0\t|\t0\t|\t0\t|\t0\t|\t0\t|\t\t|
9606\t|\t131567\t|\tspecies\t|\tHS\t|\t5\t|\t1\t|\t1\t|\t1\t|\t2\t|\t1\t|\t1\t|\t0\t|\t\t|
";

    #[test]
    fn ncbi_nodes_reader_builds_a_rooted_tree() {
        let ncbi = read_ncbi_nodes(NODES_DMP).unwrap();
        let t = &ncbi.taxonomy;
        assert_eq!(t.concept_count(), 4);
        assert_eq!(ncbi.tax_ids, vec![1, 131567, 2, 9606]);
        assert_eq!(ncbi.ranks[2], "superkingdom");
        assert_eq!(ncbi.ranks[3], "species");
        let root = ncbi.index[&1];
        let cellular = ncbi.index[&131567];
        let human = ncbi.index[&9606];
        assert_eq!(t.roots(), &[root], "self-parented node 1 is the root");
        assert!(t.is_ancestor(root, human));
        assert!(t.is_ancestor(cellular, human));
        assert!(!t.is_ancestor(human, cellular));
        assert_eq!(t.cross_link_concepts(), 0, "NCBI is a pure tree");
        assert_eq!(t.depth(human), 2);
    }

    #[test]
    fn ncbi_nodes_reader_tolerates_bare_pipes_and_rejects_garbage() {
        // Plain `|` separators without tabs also parse.
        let ncbi = read_ncbi_nodes("1|1|no rank\n7|1|genus\n").unwrap();
        assert_eq!(ncbi.taxonomy.concept_count(), 2);
        assert_eq!(ncbi.index[&7], tsg_graph::NodeLabel(1));
        // Missing fields, bad numbers, duplicates, unknown parents.
        assert!(matches!(
            read_ncbi_nodes("1\t|\n").unwrap_err(),
            GraphError::Parse { line: 1, .. }
        ));
        assert!(matches!(
            read_ncbi_nodes("x\t|\t1\t|\trank\t|\n").unwrap_err(),
            GraphError::Parse { line: 1, .. }
        ));
        assert!(matches!(
            read_ncbi_nodes("1|1|r\n1|1|r\n").unwrap_err(),
            GraphError::Parse { line: 2, .. }
        ));
        let err = read_ncbi_nodes("1|1|r\n5|99|r\n").unwrap_err();
        match err {
            GraphError::Parse { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("never declared"), "{msg}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// A hand-trimmed `names.dmp` excerpt matching [`NODES_DMP`]'s
    /// tax-ids, in the real shape: several records per id, one of them
    /// class `scientific name`.
    const NAMES_DMP: &str = "\
1\t|\tall\t|\t\t|\tsynonym\t|
1\t|\troot\t|\t\t|\tscientific name\t|
131567\t|\tcellular organisms\t|\t\t|\tscientific name\t|
2\t|\teubacteria\t|\t\t|\tgenbank common name\t|
2\t|\tBacteria\t|\tBacteria <bacteria>\t|\tscientific name\t|
9606\t|\thuman\t|\t\t|\tgenbank common name\t|
9606\t|\tHomo sapiens\t|\t\t|\tscientific name\t|
9606\t|\tLOTTE\t|\t\t|\tauthority\t|
";

    #[test]
    fn ncbi_names_reader_picks_scientific_names_in_concept_order() {
        let ncbi = read_ncbi_nodes(NODES_DMP).unwrap();
        let names = read_ncbi_names(NAMES_DMP, &ncbi).unwrap();
        assert_eq!(names.len(), 4);
        // Dense concept order: file order of nodes.dmp, not names.dmp.
        assert_eq!(names.name(ncbi.index[&1]), Some("root"));
        assert_eq!(names.name(ncbi.index[&131567]), Some("cellular organisms"));
        assert_eq!(names.name(ncbi.index[&2]), Some("Bacteria"));
        assert_eq!(names.name(ncbi.index[&9606]), Some("Homo sapiens"));
        // And the reverse lookup resolves to the right concept.
        assert_eq!(names.get("Homo sapiens"), Some(ncbi.index[&9606]));
    }

    #[test]
    fn ncbi_names_reader_tolerates_trimmed_dumps() {
        let ncbi = read_ncbi_nodes(NODES_DMP).unwrap();
        // 131567 has only a synonym (first record wins), 9606 has no
        // record at all, and tax-id 424242 is not in the nodes dump.
        let trimmed = "\
1|root|  |scientific name
131567|biota|  |synonym
424242|ghost|  |scientific name
2|Bacteria|  |scientific name
";
        let names = read_ncbi_names(trimmed, &ncbi).unwrap();
        assert_eq!(names.name(ncbi.index[&131567]), Some("biota"));
        assert_eq!(names.name(ncbi.index[&9606]), Some("taxid-9606"));
        assert_eq!(names.get("ghost"), None, "unknown tax-ids are skipped");
    }

    #[test]
    fn ncbi_names_reader_disambiguates_collisions() {
        // Three taxa all named "Ambiguous": the first keeps the plain
        // name, the second has a unique-name field to fall back on, the
        // third gets the tax-id suffix.
        let nodes = "1|1|no rank\n10|1|genus\n20|1|genus\n30|1|genus\n";
        let names_text = "\
1|root|  |scientific name
10|Ambiguous|  |scientific name
20|Ambiguous|Ambiguous <plant>|scientific name
30|Ambiguous|  |scientific name
";
        let ncbi = read_ncbi_nodes(nodes).unwrap();
        let names = read_ncbi_names(names_text, &ncbi).unwrap();
        assert_eq!(names.name(ncbi.index[&10]), Some("Ambiguous"));
        assert_eq!(names.name(ncbi.index[&20]), Some("Ambiguous <plant>"));
        assert_eq!(names.name(ncbi.index[&30]), Some("Ambiguous (30)"));
    }

    #[test]
    fn ncbi_names_reader_rejects_malformed_records() {
        let ncbi = read_ncbi_nodes("1|1|no rank\n").unwrap();
        assert!(matches!(
            read_ncbi_names("x|name|  |scientific name\n", &ncbi).unwrap_err(),
            GraphError::Parse { line: 1, .. }
        ));
        assert!(matches!(
            read_ncbi_names("1\n", &ncbi).unwrap_err(),
            GraphError::Parse { line: 1, .. }
        ));
        let err = read_ncbi_names("1|root|  |scientific name\n1\t|\t\t|\t\t|\tsynonym\t|\n", &ncbi)
            .unwrap_err();
        match err {
            GraphError::Parse { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("empty name_txt"), "{msg}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn forward_references_in_is_a_are_fine() {
        // `p` lines may appear before all `c` lines… they are deferred.
        let text = "c 0 r\np 1 0\nc 1 k\n";
        let (_, t) = read_taxonomy(text).unwrap();
        assert_eq!(t.concept_count(), 2);
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use crate::samples;
    use crate::taxonomy_from_edges;

    #[test]
    fn taxonomy_dot_renders_concepts_and_is_a() {
        let (names, t, _) = samples::go_excerpt();
        let dot = to_dot(&t, "go excerpt", Some(&names));
        assert!(dot.starts_with("digraph go_excerpt {"));
        assert!(dot.contains("rankdir=BT"));
        assert!(dot.contains("label=\"molecular function\""));
        assert!(dot.contains("->"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn artificial_roots_are_dashed() {
        let t = taxonomy_from_edges(3, [(2, 0), (2, 1)]).unwrap().unify_most_general();
        let dot = to_dot(&t, "multi", None);
        assert!(dot.contains("style=dashed"), "{dot}");
    }
}
