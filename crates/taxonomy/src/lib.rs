//! Label taxonomies (is-a hierarchies) for taxonomy-superimposed graph
//! mining.
//!
//! A taxonomy `T(V_T, E_T, L_T, λ_T)` is a labeled DAG where an edge from
//! `u` to `v` states that `v` is an ancestor of `u` (paper §2). Its labeling
//! function is one-to-one and onto, so here a concept simply *is* its
//! [`NodeLabel`]; concepts are dense ids `0..concept_count()`.
//!
//! Conventions from the paper that this crate implements exactly:
//!
//! * Ancestorship is reflexive and transitive: every label is an ancestor of
//!   itself, and ancestors of ancestors are ancestors.
//! * A label may have several most-general ancestors when the taxonomy has
//!   multiple roots sharing descendants; [`Taxonomy::unify_most_general`]
//!   introduces artificial roots so that Step 1 of Taxogram (relabeling with
//!   *the* most general ancestor) is well defined (§3, Step 1).
//! * Infrequent-label pruning (§3, enhancement *b*) removes a
//!   downward-closed set of concepts: a concept is generalized-frequent only
//!   if all its parents are, so removing the infrequent ones keeps the
//!   remainder a valid DAG.

mod builder;
pub mod io;
mod reach;
pub mod samples;
pub mod similarity;
#[allow(clippy::module_inception)]
mod taxonomy;

pub use builder::{taxonomy_from_edges, TaxonomyBuilder};
pub use reach::Closure;
pub use taxonomy::Taxonomy;

use tsg_graph::NodeLabel;

/// Errors raised while building or transforming a taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaxonomyError {
    /// The is-a relation contains a cycle through the given concept.
    Cycle {
        /// A concept on the cycle.
        on: NodeLabel,
    },
    /// An is-a edge referenced a concept that was never declared.
    UnknownConcept {
        /// The offending concept id.
        concept: NodeLabel,
        /// Number of declared concepts.
        len: usize,
    },
    /// A concept was declared as its own parent.
    SelfIsA {
        /// The offending concept.
        concept: NodeLabel,
    },
    /// The same is-a edge was declared twice.
    DuplicateIsA {
        /// Child concept.
        child: NodeLabel,
        /// Parent concept.
        parent: NodeLabel,
    },
    /// The taxonomy has no concepts.
    Empty,
}

impl std::fmt::Display for TaxonomyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaxonomyError::Cycle { on } => write!(f, "is-a cycle through concept {on}"),
            TaxonomyError::UnknownConcept { concept, len } => {
                write!(f, "concept {concept} out of bounds ({len} declared)")
            }
            TaxonomyError::SelfIsA { concept } => {
                write!(f, "concept {concept} declared as its own parent")
            }
            TaxonomyError::DuplicateIsA { child, parent } => {
                write!(f, "duplicate is-a edge {child} -> {parent}")
            }
            TaxonomyError::Empty => write!(f, "taxonomy has no concepts"),
        }
    }
}

impl std::error::Error for TaxonomyError {}
