//! Interval-labeled reachability over the is-a DAG.
//!
//! The old closure store kept one dense reflexive-ancestor bitset and one
//! descendant bitset per concept — `O(n²)` bits, ≈125 GB for a 10⁶-concept
//! ontology. This module replaces it with the classic tree-cover labeling:
//!
//! * A **spanning forest** is extracted from the DAG (each concept's first
//!   declared parent becomes its tree parent), and a DFS over that forest
//!   assigns every concept a half-open preorder interval `[pre, post)`.
//!   `a` is a *tree* ancestor of `d` iff `pre[a] <= pre[d] < post[a]` —
//!   one comparison pair, O(1), cache-resident.
//! * **Cross-links** (second and later parents, the DAG part) are folded
//!   into a small per-concept set of *extra interval roots*: concept ids
//!   `r` such that the full ancestor set decomposes as
//!   `Anc(v) = TreeAnc(v) ∪ ⋃_r TreeAnc(r)`. The sets are kept minimal
//!   (no member tree-subsumes another) and are stored flat in a CSR
//!   (bitmask + popcount rank) — a pure tree stores nothing at all.
//!
//! Storage is `O(n + cross-links·affected-depth)` instead of `O(n²)`;
//! `is_ancestor` is O(1) on the tree path and O(|extra|) otherwise.
//! Full closures ([`Closure`]) are materialized lazily by walking tree
//! parent chains, and memoized per taxonomy in a bounded FIFO cache
//! ([`ClosureMemo`]) keyed by concept — the occurrence-index build asks
//! for the same few database labels over and over.

// tsg-lint: allow(index) — CSR offsets and interval labels are built consistent with the concept count, and traversals index only by ids the structure itself issued

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex}; // tsg-lint: allow(facade) — crate layering: tsg-taxonomy sits below the facade crate (taxogram-core depends on it); the closure-memo lock is a leaf cache with no cross-thread protocol
use tsg_graph::NodeLabel;

/// Sentinel for "no tree parent / absent concept" in the u32 arrays.
pub(crate) const NONE: u32 = u32::MAX;

/// A lazily materialized, immutable closure (ancestor or descendant) set:
/// sorted concept ids behind an `Arc`, so memo hits and clones are free.
///
/// This is the value type [`crate::Taxonomy::ancestors`] and
/// [`crate::Taxonomy::descendants`] return; iteration order is ascending
/// concept id, exactly the order the old dense bitsets iterated in.
#[derive(Clone)]
pub struct Closure {
    ids: Arc<[u32]>,
}

impl Closure {
    /// Wraps an already-sorted, deduplicated id list.
    pub(crate) fn from_sorted(ids: Vec<u32>) -> Closure {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "closure ids must be strictly sorted");
        Closure { ids: ids.into() }
    }

    /// The empty closure.
    pub(crate) fn empty() -> Closure {
        Closure { ids: Arc::from([]) }
    }

    /// Number of concepts in the closure.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` iff the closure is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Membership test by binary search.
    #[inline]
    pub fn contains(&self, id: usize) -> bool {
        u32::try_from(id).is_ok_and(|id| self.ids.binary_search(&id).is_ok())
    }

    /// Iterates member concept ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.ids.iter().map(|&i| i as usize)
    }

    /// Iterates members as [`NodeLabel`]s in ascending order.
    pub fn labels(&self) -> impl Iterator<Item = NodeLabel> + '_ {
        self.ids.iter().map(|&i| NodeLabel(i))
    }

    /// The member ids as a sorted slice.
    #[inline]
    pub fn as_ids(&self) -> &[u32] {
        &self.ids
    }

    /// The members as a sorted `Vec<usize>` (the old bitset debug shape).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Sorted-merge intersection with another closure.
    pub fn intersection(&self, other: &Closure) -> Closure {
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.ids, &other.ids);
        let mut out = Vec::new();
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Closure::from_sorted(out)
    }

    /// Heap bytes held by the id storage.
    pub fn heap_bytes(&self) -> usize {
        self.ids.len() * std::mem::size_of::<u32>()
    }
}

impl PartialEq for Closure {
    fn eq(&self, other: &Closure) -> bool {
        self.ids == other.ids
    }
}

impl Eq for Closure {}

impl std::fmt::Debug for Closure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.ids.iter()).finish()
    }
}

impl<'a> IntoIterator for &'a Closure {
    type Item = usize;
    type IntoIter = std::iter::Map<std::slice::Iter<'a, u32>, fn(&u32) -> usize>;
    fn into_iter(self) -> Self::IntoIter {
        self.ids.iter().map(|&i| i as usize)
    }
}

/// Compressed sparse rows of [`NodeLabel`] adjacency (parents or
/// children). Replaces `Vec<Vec<NodeLabel>>` — two flat allocations
/// instead of one heap vector per concept, which matters at 10⁶ concepts.
#[derive(Clone, Debug, Default)]
pub(crate) struct Csr {
    off: Vec<u32>,
    dat: Vec<NodeLabel>,
}

impl Csr {
    pub(crate) fn from_rows(rows: &[Vec<NodeLabel>]) -> Csr {
        let mut off = Vec::with_capacity(rows.len() + 1);
        let total: usize = rows.iter().map(Vec::len).sum();
        let mut dat = Vec::with_capacity(total);
        off.push(0);
        for row in rows {
            dat.extend_from_slice(row);
            off.push(dat.len() as u32);
        }
        Csr { off, dat }
    }

    #[inline]
    pub(crate) fn row(&self, i: usize) -> &[NodeLabel] {
        &self.dat[self.off[i] as usize..self.off[i + 1] as usize]
    }

    pub(crate) fn len(&self) -> usize {
        self.off.len() - 1
    }

    pub(crate) fn item_count(&self) -> usize {
        self.dat.len()
    }

    /// Expands back into per-concept rows (for the rebuild paths:
    /// `restrict`, `unify_most_general`).
    pub(crate) fn to_rows(&self) -> Vec<Vec<NodeLabel>> {
        (0..self.len()).map(|i| self.row(i).to_vec()).collect()
    }

    pub(crate) fn heap_bytes(&self) -> usize {
        self.off.len() * 4 + self.dat.len() * std::mem::size_of::<NodeLabel>()
    }
}

/// The interval labeling plus cross-link fallback for one taxonomy.
#[derive(Clone, Debug)]
pub(crate) struct Reachability {
    /// DFS preorder number per concept (`NONE` for absent concepts).
    pre: Vec<u32>,
    /// Exclusive end of the concept's subtree interval (`0` for absent).
    post: Vec<u32>,
    /// Preorder number → concept id; a concept's tree descendants are the
    /// contiguous slice `order_by_pre[pre[v]..post[v]]`.
    order_by_pre: Vec<u32>,
    /// Spanning-forest parent (`NONE` for roots and absent concepts).
    tree_parent: Vec<u32>,
    /// Depth along the spanning tree (roots are 0).
    tree_depth: Vec<u32>,
    /// The forest root above each concept (`NONE` for absent).
    tree_root: Vec<u32>,
    /// Extra-ancestor interval roots, flattened CSR-style: the members of
    /// the `i`-th cross-linked concept (in `extra_keys` order) are
    /// `extra_dat[extra_off[i]..extra_off[i + 1]]`. Concepts whose
    /// ancestors are purely tree-covered have no entry — a pure tree
    /// stores nothing here at all. Flat storage matters: at 10⁶ concepts
    /// with ~50% cross-linked, a per-concept heap set costs ~200 bytes of
    /// container overhead per entry (~100 MB); this layout is 8 + 4·|set|.
    extra_off: Vec<u32>,
    extra_dat: Vec<u32>,
    /// Sorted keys (concept ids) owning an extra set, for descendant scans.
    extra_keys: Vec<u32>,
    /// One bit per concept: set iff the concept has an extra set. Checked
    /// before anything else so negative `is_ancestor` probes on
    /// tree-covered concepts cost one word read.
    has_extra: Vec<u64>,
    /// Number of `has_extra` bits set strictly before each word — turns
    /// the bitmask into an O(1) rank index into `extra_off`.
    extra_rank: Vec<u32>,
}

impl Reachability {
    /// Builds the labeling. `order` must be a topological order of the
    /// present concepts (parents before children); parent/child rows of
    /// present concepts must reference present concepts only.
    pub(crate) fn build(
        parents: &Csr,
        children: &Csr,
        present: &[bool],
        order: &[usize],
    ) -> Reachability {
        let n = present.len();
        let mut tree_parent = vec![NONE; n];
        for &v in order {
            if let Some(&p) = parents.row(v).first() {
                tree_parent[v] = p.0;
            }
        }

        // Tree-children adjacency (CSR over the spanning forest), in the
        // declared child order so DFS numbering is deterministic.
        let mut tcount = vec![0u32; n];
        for &v in order {
            for &c in children.row(v) {
                if tree_parent[c.index()] == v as u32 {
                    tcount[v] += 1;
                }
            }
        }
        let mut toff = vec![0u32; n + 1];
        for i in 0..n {
            toff[i + 1] = toff[i] + tcount[i];
        }
        let mut tdat = vec![0u32; toff[n] as usize];
        let mut fill = toff.clone();
        for &v in order {
            for &c in children.row(v) {
                if tree_parent[c.index()] == v as u32 {
                    tdat[fill[v] as usize] = c.0;
                    fill[v] += 1;
                }
            }
        }

        // Iterative DFS over each root (ascending id), assigning pre on
        // entry and post on exit. An explicit stack keeps 10⁶-deep chains
        // from overflowing the call stack.
        let mut pre = vec![NONE; n];
        let mut post = vec![0u32; n];
        let mut tree_depth = vec![0u32; n];
        let mut tree_root = vec![NONE; n];
        let present_count = order.len();
        let mut order_by_pre = Vec::with_capacity(present_count);
        let mut counter = 0u32;
        let mut stack: Vec<(u32, u32)> = Vec::new(); // (node, next child offset)
        for root in 0..n {
            if !present[root] || tree_parent[root] != NONE {
                continue;
            }
            pre[root] = counter;
            order_by_pre.push(root as u32);
            counter += 1;
            tree_depth[root] = 0;
            tree_root[root] = root as u32;
            stack.push((root as u32, toff[root]));
            while let Some(&mut (v, ref mut next)) = stack.last_mut() {
                if *next < toff[v as usize + 1] {
                    let c = tdat[*next as usize];
                    *next += 1;
                    pre[c as usize] = counter;
                    order_by_pre.push(c);
                    counter += 1;
                    tree_depth[c as usize] = tree_depth[v as usize] + 1;
                    tree_root[c as usize] = tree_root[v as usize];
                    stack.push((c, toff[c as usize]));
                } else {
                    post[v as usize] = counter;
                    stack.pop();
                }
            }
        }
        debug_assert_eq!(order_by_pre.len(), present_count);

        // Cross-link fallback, in topological order: a concept's interval
        // roots are itself plus every parent's roots, minimized by
        // dropping any member whose subtree holds another member (the
        // deeper member's tree chain covers the shallower's). Built into
        // a map keyed by concept (the topo pass needs parent lookups),
        // then flattened into CSR arrays.
        let mut extra: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut cand: Vec<u32> = Vec::new();
        for &v in order {
            let prow = parents.row(v);
            if prow.is_empty() {
                continue;
            }
            cand.clear();
            cand.push(v as u32);
            for &p in prow {
                cand.push(p.0);
                if let Some(set) = extra.get(&p.0) {
                    cand.extend_from_slice(set);
                }
            }
            cand.sort_unstable_by_key(|&c| pre[c as usize]);
            cand.dedup();
            // Keep a member iff no other member sits in its subtree; the
            // candidates are sorted by pre, so the only possible inhabitant
            // starts at the immediately following distinct member.
            let members: Vec<u32> = cand
                .iter()
                .enumerate()
                .filter(|&(i, &m)| {
                    m != v as u32
                        && cand.get(i + 1).is_none_or(|&next| {
                            pre[next as usize] >= post[m as usize]
                        })
                })
                .map(|(_, &m)| m)
                .collect();
            if !members.is_empty() {
                extra.insert(v as u32, members);
            }
        }
        let mut extra_keys: Vec<u32> = extra.keys().copied().collect();
        extra_keys.sort_unstable();
        let mut extra_off = Vec::with_capacity(extra_keys.len() + 1);
        let mut extra_dat = Vec::new();
        extra_off.push(0u32);
        for &k in &extra_keys {
            let mut members = extra.remove(&k).expect("key came from this map"); // tsg-lint: allow(panic) — key came from iterating this map
            members.sort_unstable();
            extra_dat.extend_from_slice(&members);
            extra_off.push(extra_dat.len() as u32);
        }
        let mut has_extra = vec![0u64; n.div_ceil(64)];
        for &k in &extra_keys {
            has_extra[(k / 64) as usize] |= 1u64 << (k % 64);
        }
        let mut extra_rank = Vec::with_capacity(has_extra.len());
        let mut running = 0u32;
        for &w in &has_extra {
            extra_rank.push(running);
            running += w.count_ones();
        }

        Reachability {
            pre,
            post,
            order_by_pre,
            tree_parent,
            tree_depth,
            tree_root,
            extra_off,
            extra_dat,
            extra_keys,
            has_extra,
            extra_rank,
        }
    }

    /// O(1) spanning-tree ancestorship (reflexive): `a`'s interval
    /// contains `d`'s preorder number. Absent concepts never contain and
    /// are never contained (their sentinel interval is empty).
    #[inline]
    pub(crate) fn tree_contains(&self, a: usize, d: usize) -> bool {
        let ap = self.pre[a];
        let dp = self.pre[d];
        ap <= dp && dp < self.post[a]
    }

    /// The extra interval roots of `v` (sorted concept ids), if any:
    /// bitmask probe, then popcount rank into the flat member storage.
    #[inline]
    pub(crate) fn extra_of(&self, v: usize) -> Option<&[u32]> {
        let word = self.has_extra[v / 64];
        let bit = 1u64 << (v % 64);
        if word & bit == 0 {
            return None;
        }
        let rank =
            (self.extra_rank[v / 64] + (word & (bit - 1)).count_ones()) as usize;
        Some(&self.extra_dat
            [self.extra_off[rank] as usize..self.extra_off[rank + 1] as usize])
    }

    /// The members of the `i`-th extra set, in `extra_keys` order.
    fn extra_members(&self, i: usize) -> &[u32] {
        &self.extra_dat[self.extra_off[i] as usize..self.extra_off[i + 1] as usize]
    }

    #[inline]
    pub(crate) fn tree_depth(&self, v: usize) -> u32 {
        self.tree_depth[v]
    }

    #[inline]
    pub(crate) fn tree_parent(&self, v: usize) -> u32 {
        self.tree_parent[v]
    }

    #[inline]
    pub(crate) fn tree_root(&self, v: usize) -> u32 {
        self.tree_root[v]
    }

    /// Pushes `v`'s spanning-tree ancestor chain (reflexive) onto `out`.
    fn push_tree_chain(&self, v: usize, out: &mut Vec<u32>) {
        let mut cur = v as u32;
        loop {
            out.push(cur);
            cur = self.tree_parent[cur as usize];
            if cur == NONE {
                return;
            }
        }
    }

    /// Materializes the reflexive ancestor closure of a present concept:
    /// the union of the tree chains of `v` and its extra interval roots.
    pub(crate) fn ancestors_of(&self, v: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.tree_depth[v] as usize + 1);
        self.push_tree_chain(v, &mut out);
        if let Some(set) = self.extra_of(v) {
            for &r in set {
                self.push_tree_chain(r as usize, &mut out);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Materializes the reflexive descendant closure of a present
    /// concept: the contiguous subtree slice plus every cross-linked
    /// concept with an extra interval root inside the subtree.
    pub(crate) fn descendants_of(&self, v: usize) -> Vec<u32> {
        let (lo, hi) = (self.pre[v], self.post[v]);
        let mut out: Vec<u32> =
            self.order_by_pre[lo as usize..hi as usize].to_vec();
        for (i, &u) in self.extra_keys.iter().enumerate() {
            let inside = |&r: &u32| {
                let rp = self.pre[r as usize];
                lo <= rp && rp < hi
            };
            if self.extra_members(i).iter().any(inside) {
                out.push(u);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of concepts carrying a cross-link fallback set.
    pub(crate) fn extra_count(&self) -> usize {
        self.extra_keys.len()
    }

    /// Resident bytes of the interval labeling plus the cross-link
    /// fallback sets (the `taxonomy_scale` bench's "closure bytes").
    pub(crate) fn closure_bytes(&self) -> usize {
        (self.pre.len()
            + self.post.len()
            + self.order_by_pre.len()
            + self.tree_parent.len()
            + self.tree_depth.len()
            + self.tree_root.len()
            + self.extra_keys.len()
            + self.extra_off.len()
            + self.extra_dat.len()
            + self.extra_rank.len())
            * 4
            + self.has_extra.len() * 8
    }
}

/// Bounded memo for materialized closures, shared behind `&Taxonomy`.
///
/// FIFO eviction over a byte budget: the working set of the OI build is a
/// handful of database labels queried millions of times, so recency
/// sophistication buys nothing — the bound only has to keep a
/// 10⁶-concept taxonomy from accumulating gigabytes of closures.
pub(crate) struct ClosureMemo {
    inner: Mutex<MemoInner>,
}

#[derive(Default)]
struct MemoInner {
    map: HashMap<u64, Closure>,
    queue: VecDeque<u64>,
    bytes: usize,
}

/// Memo byte budget. 16 MB holds every closure of any realistic mining
/// label set while bounding worst-case resident memory on huge inputs.
const MEMO_BYTE_CAP: usize = 16 << 20;

#[inline]
fn memo_key(descendants: bool, id: u32) -> u64 {
    (u64::from(descendants) << 32) | u64::from(id)
}

impl ClosureMemo {
    pub(crate) fn new() -> ClosureMemo {
        ClosureMemo {
            inner: Mutex::new(MemoInner::default()),
        }
    }

    /// Cached closure for `(descendants?, id)`, if present.
    pub(crate) fn get(&self, descendants: bool, id: u32) -> Option<Closure> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.map.get(&memo_key(descendants, id)).cloned()
    }

    /// Inserts a freshly computed closure, evicting oldest entries past
    /// the byte budget. Races between readers recompute harmlessly — the
    /// closure content is a pure function of the taxonomy.
    pub(crate) fn put(&self, descendants: bool, id: u32, closure: &Closure) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let key = memo_key(descendants, id);
        if inner.map.contains_key(&key) {
            return;
        }
        inner.bytes += closure.heap_bytes();
        inner.map.insert(key, closure.clone());
        inner.queue.push_back(key);
        while inner.bytes > MEMO_BYTE_CAP {
            let Some(old) = inner.queue.pop_front() else {
                break;
            };
            if let Some(evicted) = inner.map.remove(&old) {
                inner.bytes -= evicted.heap_bytes();
            }
        }
    }

    /// Current resident bytes of memoized closures.
    pub(crate) fn bytes(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).bytes
    }
}

impl std::fmt::Debug for ClosureMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClosureMemo").field("bytes", &self.bytes()).finish()
    }
}
