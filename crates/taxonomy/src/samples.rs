//! Shared fixtures modeled on the paper's running examples.
//!
//! Figures in the paper are images; where a figure's exact topology is not
//! fully recoverable from the text (Figure 2.1's letter taxonomy), the
//! fixture here preserves every relationship the text actually *uses* in
//! Examples 2.2–2.8 and 3.1–3.8, and the tests built on these fixtures
//! assert the properties the paper derives from them.

// tsg-lint: allow(panic) — fixture builders over statically known-good paper figures; a panic here is a broken fixture, caught by every test that uses it

use crate::{Taxonomy, TaxonomyBuilder};
use tsg_graph::{EdgeLabel, GraphDatabase, LabelTable, LabeledGraph, NodeLabel};

/// The Gene Ontology excerpt of Figure 1.1 plus the pathway database of
/// Figure 1.2, with a shared label table.
///
/// Taxonomy (child → parent):
///
/// ```text
/// Molecular Function
/// ├── Transporter
/// │   ├── Carrier ── Protein Carrier
/// │   └── Cation Transp.
/// └── Catalytic Activity
///     └── Helicase ── DNA Helicase
/// ```
///
/// Database: Pathway 1 = `Protein Carrier — DNA Helicase`,
/// Pathway 2 = `Cation Transp. — Helicase — DNA Helicase` (chain).
pub fn go_excerpt() -> (LabelTable, Taxonomy, GraphDatabase) {
    let mut names = LabelTable::new();
    let mf = names.intern("molecular function");
    let transporter = names.intern("transporter");
    let carrier = names.intern("carrier");
    let cation = names.intern("cation transp.");
    let protein_carrier = names.intern("protein carrier");
    let catalytic = names.intern("catalytic activity");
    let helicase = names.intern("helicase");
    let dna_helicase = names.intern("dna helicase");

    let mut b = TaxonomyBuilder::with_concepts(names.len());
    for (c, p) in [
        (transporter, mf),
        (catalytic, mf),
        (carrier, transporter),
        (cation, transporter),
        (protein_carrier, carrier),
        (helicase, catalytic),
        (dna_helicase, helicase),
    ] {
        b.is_a(c, p).expect("fixture edges are valid");
    }
    let taxonomy = b.build().expect("fixture taxonomy is acyclic");

    let interaction = EdgeLabel(0);
    let mut p1 = LabeledGraph::with_nodes([protein_carrier, dna_helicase]);
    p1.add_edge(0, 1, interaction).unwrap();
    let mut p2 = LabeledGraph::with_nodes([cation, helicase, dna_helicase]);
    p2.add_edge(0, 1, interaction).unwrap();
    p2.add_edge(1, 2, interaction).unwrap();

    (names, taxonomy, GraphDatabase::from_graphs(vec![p1, p2]))
}

/// Like [`go_excerpt`], but the pathway graphs are *directed*, as drawn in
/// the paper's Figure 1.2 (reaction order arrows). The taxonomy is
/// identical; only the database differs.
pub fn go_excerpt_directed() -> (LabelTable, Taxonomy, GraphDatabase) {
    let (names, taxonomy, _) = go_excerpt();
    let protein_carrier = names.get("protein carrier").expect("interned");
    let dna_helicase = names.get("dna helicase").expect("interned");
    let cation = names.get("cation transp.").expect("interned");
    let helicase = names.get("helicase").expect("interned");
    let interaction = EdgeLabel(0);
    let mut p1 = LabeledGraph::with_nodes_directed([protein_carrier, dna_helicase]);
    p1.add_edge(0, 1, interaction).unwrap();
    let mut p2 = LabeledGraph::with_nodes_directed([cation, helicase, dna_helicase]);
    p2.add_edge(0, 1, interaction).unwrap();
    p2.add_edge(1, 2, interaction).unwrap();
    (names, taxonomy, GraphDatabase::from_graphs(vec![p1, p2]))
}

/// Named handles into the [`sample_taxonomy`] fixture, mirroring the letter
/// names of the paper's Figure 2.1.
#[allow(missing_docs)]
#[derive(Clone, Copy, Debug)]
pub struct SampleConcepts {
    pub a: NodeLabel,
    pub b: NodeLabel,
    pub c: NodeLabel,
    pub d: NodeLabel,
    pub z: NodeLabel,
    pub f: NodeLabel,
    pub g: NodeLabel,
    pub h: NodeLabel,
    pub w: NodeLabel,
    pub k: NodeLabel,
    pub l: NodeLabel,
    pub m: NodeLabel,
}

/// A Figure 2.1-inspired letter taxonomy.
///
/// Relationships preserved from the paper's examples:
/// * `a` is the root above `b`, `c`, and (transitively) everything the
///   database graphs of Figures 1.4 and 2.3 use (`d`, `f`, `g`, `w`, `c`
///   all relabel to `a` in Figure 3.1);
/// * `b` and `c` are children of `a` (they appear as `a`'s children in the
///   occurrence indices of Figure 3.2);
/// * `d` is a child of `b`, `f` and `g` are children of `c`, `w` is a child
///   of `c`, `h` is a child of `b` (so `GB: h—a` generalizes `GD: h—d`);
/// * `k`, `l`, `m` are deeper specializations of `d`, and `g` additionally
///   has `b` as a second parent, exercising DAG (multi-parent) handling.
pub fn sample_taxonomy() -> (SampleConcepts, Taxonomy) {
    let mut b = TaxonomyBuilder::new();
    let ca = b.add_concept(); // 0: a (root)
    let cb = b.add_concept(); // 1: b
    let cc = b.add_concept(); // 2: c
    let cd = b.add_concept(); // 3: d
    let cz = b.add_concept(); // 4: z
    let cf = b.add_concept(); // 5: f
    let cg = b.add_concept(); // 6: g
    let ch = b.add_concept(); // 7: h
    let cw = b.add_concept(); // 8: w
    let ck = b.add_concept(); // 9: k
    let cl = b.add_concept(); // 10: l
    let cm = b.add_concept(); // 11: m
    for (c, p) in [
        (cb, ca),
        (cc, ca),
        (cd, cb),
        (cz, cb),
        (ch, cb),
        (cf, cc),
        (cg, cc),
        (cg, cb), // DAG: g has two parents
        (cw, cc),
        (ck, cd),
        (cl, cd),
        (cm, cd),
    ] {
        b.is_a(c, p).expect("fixture edges are valid");
    }
    let t = b.build().expect("fixture taxonomy is acyclic");
    (
        SampleConcepts {
            a: ca,
            b: cb,
            c: cc,
            d: cd,
            z: cz,
            f: cf,
            g: cg,
            h: ch,
            w: cw,
            k: ck,
            l: cl,
            m: cm,
        },
        t,
    )
}

/// The database `D = {G1, G2, G3}` of Figure 1.4 over [`sample_taxonomy`]:
/// `G1 = d—b`, `G2 = f—c, f—g` (path `c—f—g`), `G3 = w—c`.
///
/// After Step 1 relabeling every vertex becomes `a` (Figure 3.1).
pub fn figure_1_4_database(c: &SampleConcepts) -> GraphDatabase {
    let e0 = EdgeLabel(0);
    let mut g1 = LabeledGraph::with_nodes([c.d, c.b]);
    g1.add_edge(0, 1, e0).unwrap();
    let mut g2 = LabeledGraph::with_nodes([c.f, c.c, c.g]);
    g2.add_edge(0, 1, e0).unwrap();
    g2.add_edge(0, 2, e0).unwrap();
    let mut g3 = LabeledGraph::with_nodes([c.w, c.c]);
    g3.add_edge(0, 1, e0).unwrap();
    GraphDatabase::from_graphs(vec![g1, g2, g3])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn go_excerpt_has_paper_shape() {
        let (names, t, db) = go_excerpt();
        assert_eq!(t.concept_count(), 8);
        assert_eq!(t.roots().len(), 1);
        assert_eq!(t.max_depth(), 3);
        assert_eq!(db.len(), 2);
        let helicase = names.get("helicase").unwrap();
        let dna = names.get("dna helicase").unwrap();
        assert!(t.is_ancestor(helicase, dna));
        let transporter = names.get("transporter").unwrap();
        let cation = names.get("cation transp.").unwrap();
        let pc = names.get("protein carrier").unwrap();
        assert!(t.is_ancestor(transporter, cation));
        assert!(t.is_ancestor(transporter, pc));
        // No *explicit* common pattern: the two pathways share no label.
        let l1: std::collections::HashSet<_> = db[0].labels().iter().collect();
        let l2: std::collections::HashSet<_> = db[1].labels().iter().collect();
        assert_eq!(l1.intersection(&l2).count(), 1, "only dna helicase shared");
    }

    #[test]
    fn directed_go_excerpt_has_arcs() {
        let (_, _, db) = go_excerpt_directed();
        assert!(db.iter().all(|(_, g)| g.is_directed()));
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn sample_taxonomy_relations_used_by_examples() {
        let (c, t) = sample_taxonomy();
        // Everything in Figure 1.4's database relabels to a.
        for x in [c.d, c.b, c.f, c.c, c.g, c.w] {
            assert_eq!(t.most_general_ancestor(x), Some(c.a));
        }
        // b and c are a's children (OIE of Figure 3.2).
        assert!(t.children(c.a).contains(&c.b));
        assert!(t.children(c.a).contains(&c.c));
        // GB (h—a) generalizes GD (h—d): needs a ≥ d.
        assert!(t.is_ancestor(c.a, c.d));
        // DAG: g has two parents.
        assert_eq!(t.parents(c.g).len(), 2);
        // d has the deeper children k, l, m.
        assert_eq!(t.children(c.d), &[c.k, c.l, c.m]);
    }

    #[test]
    fn figure_1_4_database_shape() {
        let (c, _) = sample_taxonomy();
        let db = figure_1_4_database(&c);
        assert_eq!(db.len(), 3);
        assert_eq!(db[0].edge_count(), 1);
        assert_eq!(db[1].edge_count(), 2);
        assert_eq!(db[2].edge_count(), 1);
    }
}
