//! Information-content semantic similarity over a taxonomy.
//!
//! The paper's bibliography includes Resnik's IJCAI'95 measure
//! ("Using Information Content to Evaluate Semantic Similarity in a
//! Taxonomy", reference [16]); this module implements it — plus Lin's
//! normalized variant — so mined patterns can be compared, clustered, or
//! ranked by how semantically specific their labels are.
//!
//! * The **information content** of concept `c` is
//!   `IC(c) = -ln(freq(c) / freq(root))`, where `freq` is the generalized
//!   occurrence frequency (a concept "occurs" whenever any of its
//!   reflexive descendants does — exactly
//!   [`Taxonomy::generalized_label_frequencies`]).
//! * `sim_resnik(a, b) = max IC(c)` over common ancestors `c` of `a` and
//!   `b` (the *most informative common ancestor*, MICA).
//! * `sim_lin(a, b) = 2·IC(mica) / (IC(a) + IC(b))`, in `[0, 1]`.

use crate::Taxonomy;
use tsg_graph::{GraphDatabase, NodeLabel};

/// Precomputed information content per concept, over a given corpus.
#[derive(Clone, Debug)]
pub struct InformationContent {
    ic: Vec<f64>,
}

impl InformationContent {
    /// Computes IC values from corpus frequencies: `freq[c]` must be the
    /// generalized occurrence count of concept `c` (any descendant
    /// counts). Concepts with zero frequency get `IC = +∞` — they are
    /// maximally specific with respect to this corpus.
    ///
    /// # Panics
    /// Panics if `freq.len() != taxonomy.concept_count()` or if every
    /// frequency is zero.
    pub fn from_frequencies(taxonomy: &Taxonomy, freq: &[usize]) -> Self {
        assert_eq!(freq.len(), taxonomy.concept_count(), "frequency vector length");
        // The corpus total is the largest root frequency: with a unified
        // root it is exactly freq(root); with several roots each subtree
        // is normalized against the overall maximum, keeping IC ≥ 0.
        let total = taxonomy
            .roots()
            .iter()
            .map(|r| freq[r.index()]) // tsg-lint: allow(index) — roots index a frequency table sized to the concept count (documented contract)
            .max()
            .unwrap_or(0);
        assert!(total > 0, "corpus contains no occurrences of any root concept");
        let ic = freq
            .iter()
            .map(|&f| {
                if f == 0 {
                    f64::INFINITY
                } else {
                    -((f as f64 / total as f64).ln())
                }
            })
            .collect();
        InformationContent { ic }
    }

    /// Convenience: IC from a database's generalized label frequencies.
    pub fn from_database(taxonomy: &Taxonomy, db: &GraphDatabase) -> Self {
        Self::from_frequencies(taxonomy, &taxonomy.generalized_label_frequencies(db))
    }

    /// The information content of a concept.
    pub fn ic(&self, c: NodeLabel) -> f64 {
        self.ic[c.index()] // tsg-lint: allow(index) — the NodeLabel is a concept id of the originating taxonomy (documented contract)
    }

    /// The most informative common ancestor of `a` and `b` under this
    /// corpus, if the two concepts share any ancestor.
    pub fn mica(&self, taxonomy: &Taxonomy, a: NodeLabel, b: NodeLabel) -> Option<NodeLabel> {
        let common = taxonomy.common_ancestors(a, b);
        common
            .iter()
            .map(|i| NodeLabel(i as u32))
            .filter(|&c| self.ic(c).is_finite())
            .max_by(|&x, &y| {
                self.ic(x)
                    .partial_cmp(&self.ic(y))
                    .expect("finite ICs compare") // tsg-lint: allow(panic) — information contents are finite logs of positive counts
                    // Deterministic tie-break by id.
                    .then_with(|| y.cmp(&x))
            })
    }

    /// Resnik similarity: IC of the MICA (0 when the only shared ancestor
    /// is corpus-universal, `None` when no ancestor is shared — a
    /// multi-root taxonomy without unification).
    pub fn sim_resnik(&self, taxonomy: &Taxonomy, a: NodeLabel, b: NodeLabel) -> Option<f64> {
        self.mica(taxonomy, a, b).map(|c| self.ic(c))
    }

    /// Lin similarity in `[0, 1]`: `2·IC(mica) / (IC(a) + IC(b))`.
    /// Returns 1.0 when `a == b` (even for zero-frequency concepts) and
    /// `None` when the concepts share no ancestor.
    pub fn sim_lin(&self, taxonomy: &Taxonomy, a: NodeLabel, b: NodeLabel) -> Option<f64> {
        if a == b {
            return Some(1.0);
        }
        let mica = self.sim_resnik(taxonomy, a, b)?;
        let denom = self.ic(a) + self.ic(b);
        if denom == 0.0 {
            // Both are corpus-universal: identical in information terms.
            return Some(1.0);
        }
        if !denom.is_finite() {
            return Some(0.0);
        }
        Some((2.0 * mica / denom).clamp(0.0, 1.0))
    }
}

/// Mean pairwise Lin similarity between the label multisets of two
/// patterns — a simple semantic distance for clustering mined patterns.
/// Returns `None` if any cross-pair shares no ancestor.
pub fn pattern_label_similarity(
    ic: &InformationContent,
    taxonomy: &Taxonomy,
    a: &[NodeLabel],
    b: &[NodeLabel],
) -> Option<f64> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let mut total = 0.0;
    let mut n = 0usize;
    for &x in a {
        for &y in b {
            total += ic.sim_lin(taxonomy, x, y)?;
            n += 1;
        }
    }
    Some(total / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;
    use crate::taxonomy_from_edges;
    use tsg_graph::{EdgeLabel, LabeledGraph};

    fn nl(v: u32) -> NodeLabel {
        NodeLabel(v)
    }

    /// Chain 0 > 1 > 2 plus sibling 3 under 0; corpus where 2 occurs in 2
    /// graphs, 3 in 6 graphs.
    fn setup() -> (Taxonomy, InformationContent) {
        let t = taxonomy_from_edges(4, [(1, 0), (2, 1), (3, 0)]).unwrap();
        let mut graphs = vec![];
        let mk = |l: u32| {
            let mut g = LabeledGraph::with_nodes([nl(l), nl(l)]);
            g.add_edge(0, 1, EdgeLabel(0)).unwrap();
            g
        };
        for _ in 0..2 {
            graphs.push(mk(2));
        }
        for _ in 0..6 {
            graphs.push(mk(3));
        }
        let db = GraphDatabase::from_graphs(graphs);
        let ic = InformationContent::from_database(&t, &db);
        (t, ic)
    }

    #[test]
    fn ic_decreases_toward_the_root() {
        let (t, ic) = setup();
        assert_eq!(ic.ic(nl(0)), 0.0, "root is corpus-universal");
        assert!(ic.ic(nl(1)) > 0.0);
        assert!(ic.ic(nl(2)) >= ic.ic(nl(1)), "specific ≥ general");
        let _ = t;
    }

    #[test]
    fn mica_picks_the_deepest_shared_ancestor() {
        let (t, ic) = setup();
        // 2 and 1 share {0, 1}; MICA = 1.
        assert_eq!(ic.mica(&t, nl(2), nl(1)), Some(nl(1)));
        // 2 and 3 share only the root.
        assert_eq!(ic.mica(&t, nl(2), nl(3)), Some(nl(0)));
    }

    #[test]
    fn resnik_orders_relatedness() {
        let (t, ic) = setup();
        let close = ic.sim_resnik(&t, nl(2), nl(1)).unwrap();
        let far = ic.sim_resnik(&t, nl(2), nl(3)).unwrap();
        assert!(close > far, "{close} vs {far}");
        assert_eq!(far, 0.0, "root-only overlap carries no information");
    }

    #[test]
    fn lin_is_normalized() {
        let (t, ic) = setup();
        assert_eq!(ic.sim_lin(&t, nl(2), nl(2)), Some(1.0));
        let v = ic.sim_lin(&t, nl(2), nl(1)).unwrap();
        assert!(v > 0.0 && v <= 1.0);
        assert_eq!(ic.sim_lin(&t, nl(2), nl(3)), Some(0.0), "root-only overlap");
        assert_eq!(ic.sim_lin(&t, nl(0), nl(0)), Some(1.0));
    }

    #[test]
    fn zero_frequency_concepts_are_infinitely_specific() {
        let t = taxonomy_from_edges(3, [(1, 0), (2, 0)]).unwrap();
        // Corpus mentions only concept 1.
        let mut g = LabeledGraph::with_nodes([nl(1)]);
        let _ = &mut g;
        let db = GraphDatabase::from_graphs(vec![g]);
        let ic = InformationContent::from_database(&t, &db);
        assert!(ic.ic(nl(2)).is_infinite());
        assert_eq!(ic.sim_lin(&t, nl(2), nl(1)), Some(0.0));
        assert_eq!(ic.sim_lin(&t, nl(2), nl(2)), Some(1.0));
    }

    #[test]
    fn pattern_similarity_groups_related_labels() {
        // Letter fixture: b-branch (d, k) vs c-branch (f, w), over a
        // corpus where every concept appears with distinct frequency.
        let (c, t) = samples::sample_taxonomy();
        let mk = |l: NodeLabel, n: usize| {
            (0..n)
                .map(|_| {
                    let mut g = LabeledGraph::with_nodes([l, l]);
                    g.add_edge(0, 1, EdgeLabel(0)).unwrap();
                    g
                })
                .collect::<Vec<_>>()
        };
        let mut graphs = vec![];
        graphs.extend(mk(c.k, 1)); // deep b-branch, rare
        graphs.extend(mk(c.d, 2));
        graphs.extend(mk(c.f, 3)); // c-branch
        graphs.extend(mk(c.w, 4));
        let db = GraphDatabase::from_graphs(graphs);
        let ic = InformationContent::from_database(&t, &db);
        // Within-branch labels are more similar than cross-branch ones.
        let within_b = ic.sim_lin(&t, c.d, c.k).unwrap();
        let cross = ic.sim_lin(&t, c.d, c.f).unwrap();
        assert!(within_b > cross, "{within_b} vs {cross}");
        // Pattern-level aggregation agrees.
        let same = pattern_label_similarity(&ic, &t, &[c.d, c.k], &[c.d]).unwrap();
        let far = pattern_label_similarity(&ic, &t, &[c.d, c.k], &[c.f, c.w]).unwrap();
        assert!(same > far, "{same} vs {far}");
    }
}
