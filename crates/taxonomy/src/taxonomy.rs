//! The immutable taxonomy with interval-labeled reachability.

// tsg-lint: allow(index) — closure, depth, and relation tables are all sized to the concept count, and concept ids are validated at the builder boundary

use crate::reach::{Closure, ClosureMemo, Csr, Reachability, NONE};
use crate::TaxonomyError;
use tsg_bitset::BitSet;
use tsg_graph::{GraphDatabase, NodeLabel};

/// An immutable is-a DAG over concepts `0..concept_count()` with
/// O(1) interval-labeled ancestorship and lazily materialized closures.
///
/// Built via [`crate::TaxonomyBuilder`]. A spanning forest of the DAG
/// carries DFS pre/post intervals, so `is_ancestor` is a pair of integer
/// comparisons on the tree path and a short sparse-set probe across
/// cross-links; storage is `O(n + cross-links)` instead of the old dense
/// `O(n²)`-bit closure matrix, which is what lets a 10⁶-concept ontology
/// fit in tens of megabytes. [`Taxonomy::ancestors`] and
/// [`Taxonomy::descendants`] materialize sorted [`Closure`] views on
/// demand, memoized per taxonomy under a fixed byte budget.
#[derive(Debug)]
pub struct Taxonomy {
    parents: Csr,
    children: Csr,
    reach: Reachability,
    /// Longest-path depth from a root (roots have depth 0).
    depth: Vec<u32>,
    roots: Vec<NodeLabel>,
    /// Concepts with ids `>= artificial_from` were introduced by
    /// [`Taxonomy::unify_most_general`] rather than declared by the user.
    artificial_from: usize,
    /// Presence mask for [`Taxonomy::restrict`]; absent concepts keep their
    /// ids but have no relations.
    present: Vec<bool>,
    /// Bounded cache of materialized closures (not part of the value:
    /// clones start with an empty memo, equality ignores it).
    memo: ClosureMemo,
}

impl Clone for Taxonomy {
    fn clone(&self) -> Taxonomy {
        Taxonomy {
            parents: self.parents.clone(),
            children: self.children.clone(),
            reach: self.reach.clone(),
            depth: self.depth.clone(),
            roots: self.roots.clone(),
            artificial_from: self.artificial_from,
            present: self.present.clone(),
            memo: ClosureMemo::new(),
        }
    }
}

impl Taxonomy {
    pub(crate) fn from_relations(
        parents: &[Vec<NodeLabel>],
        children: &[Vec<NodeLabel>],
    ) -> Result<Taxonomy, TaxonomyError> {
        let n = parents.len();
        if n == 0 {
            return Err(TaxonomyError::Empty);
        }
        let present = vec![true; n];
        Self::from_relations_masked(parents, children, present, n)
    }

    /// Core constructor: validates acyclicity over present concepts and
    /// builds the interval labeling. `artificial_from` marks where
    /// artificial ids begin.
    fn from_relations_masked(
        parents: &[Vec<NodeLabel>],
        children: &[Vec<NodeLabel>],
        present: Vec<bool>,
        artificial_from: usize,
    ) -> Result<Taxonomy, TaxonomyError> {
        let n = parents.len();
        // Kahn's algorithm from roots downward: a concept is ready once all
        // its parents are processed.
        let mut remaining: Vec<usize> = parents.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = (0..n)
            .filter(|&i| present[i] && remaining[i] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &c in &children[v] {
                remaining[c.index()] -= 1;
                if remaining[c.index()] == 0 {
                    queue.push(c.index());
                }
            }
        }
        let present_count = present.iter().filter(|&&p| p).count();
        if order.len() != present_count {
            let on = (0..n)
                .find(|&i| present[i] && remaining[i] > 0)
                .expect("some concept must remain on a cycle"); // tsg-lint: allow(panic) — a short toposort means some present concept stayed on a cycle
            return Err(TaxonomyError::Cycle { on: NodeLabel(on as u32) });
        }

        let mut depth = vec![0u32; n];
        for &v in &order {
            let mut d = 0;
            for p in &parents[v] {
                d = d.max(depth[p.index()] + 1);
            }
            depth[v] = d;
        }
        let parents = Csr::from_rows(parents);
        let children = Csr::from_rows(children);
        let reach = Reachability::build(&parents, &children, &present, &order);
        let roots = (0..n)
            .filter(|&i| present[i] && parents.row(i).is_empty())
            .map(|i| NodeLabel(i as u32))
            .collect();
        Ok(Taxonomy {
            parents,
            children,
            reach,
            depth,
            roots,
            artificial_from,
            present,
            memo: ClosureMemo::new(),
        })
    }

    /// Number of concept ids (including absent ones after
    /// [`Taxonomy::restrict`] and artificial ones after
    /// [`Taxonomy::unify_most_general`]).
    #[inline]
    pub fn concept_count(&self) -> usize {
        self.parents.len()
    }

    /// Number of concepts actually present.
    pub fn present_count(&self) -> usize {
        self.present.iter().filter(|&&p| p).count()
    }

    /// `true` iff the concept id is present (not pruned).
    #[inline]
    pub fn contains(&self, l: NodeLabel) -> bool {
        self.present.get(l.index()).copied().unwrap_or(false)
    }

    /// `true` iff the concept was introduced by
    /// [`Taxonomy::unify_most_general`].
    #[inline]
    pub fn is_artificial(&self, l: NodeLabel) -> bool {
        l.index() >= self.artificial_from
    }

    /// Direct parents (one-step generalizations).
    #[inline]
    pub fn parents(&self, l: NodeLabel) -> &[NodeLabel] {
        self.parents.row(l.index())
    }

    /// Direct children (one-step specializations).
    #[inline]
    pub fn children(&self, l: NodeLabel) -> &[NodeLabel] {
        self.children.row(l.index())
    }

    /// The reflexive ancestor closure of `l` as a sorted [`Closure`] view,
    /// materialized lazily and memoized for hot labels.
    pub fn ancestors(&self, l: NodeLabel) -> Closure {
        if !self.contains(l) {
            return Closure::empty();
        }
        let id = l.0;
        if let Some(c) = self.memo.get(false, id) {
            return c;
        }
        let c = Closure::from_sorted(self.reach.ancestors_of(l.index()));
        self.memo.put(false, id, &c);
        c
    }

    /// The reflexive descendant closure of `l` as a sorted [`Closure`]
    /// view: the contiguous spanning-tree interval plus cross-linked
    /// concepts reaching into it.
    pub fn descendants(&self, l: NodeLabel) -> Closure {
        if !self.contains(l) {
            return Closure::empty();
        }
        let id = l.0;
        if let Some(c) = self.memo.get(true, id) {
            return c;
        }
        let c = Closure::from_sorted(self.reach.descendants_of(l.index()));
        self.memo.put(true, id, &c);
        c
    }

    /// `true` iff `anc` is an ancestor of `desc` (reflexively, per the
    /// paper: every label is an ancestor of itself). O(1) interval
    /// containment on the spanning tree; cross-link ancestry falls back to
    /// probing `desc`'s extra interval roots.
    #[inline]
    pub fn is_ancestor(&self, anc: NodeLabel, desc: NodeLabel) -> bool {
        let (a, d) = (anc.index(), desc.index());
        if self.reach.tree_contains(a, d) {
            return true;
        }
        match self.reach.extra_of(d) {
            None => false,
            Some(extra) => extra.iter().any(|&r| self.reach.tree_contains(a, r as usize)),
        }
    }

    /// `true` iff a pattern vertex labeled `pattern` may match a database
    /// vertex labeled `db` under generalized isomorphism (paper §2:
    /// `λ₁(υ) = λ₂(φ(υ))` or `λ₁(υ) ∈ Anc(λ₂(φ(υ)))`).
    #[inline]
    pub fn matches_generalized(&self, pattern: NodeLabel, db: NodeLabel) -> bool {
        self.is_ancestor(pattern, db)
    }

    /// Longest-path depth of `l` from a root (roots are depth 0).
    #[inline]
    pub fn depth(&self, l: NodeLabel) -> u32 {
        self.depth[l.index()]
    }

    /// The maximum depth over present concepts; a tree of `k` levels has
    /// `max_depth() == k - 1`.
    pub fn max_depth(&self) -> u32 {
        (0..self.concept_count())
            .filter(|&i| self.present[i])
            .map(|i| self.depth[i])
            .max()
            .unwrap_or(0)
    }

    /// The present concepts with no parents.
    #[inline]
    pub fn roots(&self) -> &[NodeLabel] {
        &self.roots
    }

    /// Iterates all present concept ids.
    pub fn concepts(&self) -> impl Iterator<Item = NodeLabel> + '_ {
        (0..self.concept_count())
            .filter(|&i| self.present[i])
            .map(|i| NodeLabel(i as u32))
    }

    /// Size of the reflexive ancestor closure of `l` without materializing
    /// it: O(1) on extra-free concepts (tree depth plus one), closure
    /// length otherwise.
    pub fn ancestor_count(&self, l: NodeLabel) -> usize {
        if !self.contains(l) {
            return 0;
        }
        let v = l.index();
        match self.reach.extra_of(v) {
            None => self.reach.tree_depth(v) as usize + 1,
            Some(_) => self.ancestors(l).len(),
        }
    }

    /// Number of strict ancestors of `l` (closure minus itself).
    pub fn strict_ancestor_count(&self, l: NodeLabel) -> usize {
        self.ancestor_count(l) - 1
    }

    /// Mean strict-ancestor count over present concepts — the `d` of the
    /// paper's Lemma 1 (`O(dⁿ)` generalized patterns).
    pub fn avg_ancestor_count(&self) -> f64 {
        let n = self.present_count();
        if n == 0 {
            return 0.0;
        }
        let total: usize = self.concepts().map(|l| self.strict_ancestor_count(l)).sum();
        total as f64 / n as f64
    }

    /// The common reflexive ancestors of `a` and `b` as a sorted
    /// [`Closure`]. When both concepts are tree-covered this is the tree
    /// chain above their lowest common ancestor (no materialized closures
    /// touched); otherwise it is the sorted-merge intersection of the two
    /// ancestor closures.
    pub fn common_ancestors(&self, a: NodeLabel, b: NodeLabel) -> Closure {
        if !self.contains(a) || !self.contains(b) {
            return Closure::empty();
        }
        let (ai, bi) = (a.index(), b.index());
        if self.reach.extra_of(ai).is_none() && self.reach.extra_of(bi).is_none() {
            if self.reach.tree_root(ai) != self.reach.tree_root(bi) {
                return Closure::empty();
            }
            let (mut x, mut y) = (ai, bi);
            while self.reach.tree_depth(x) > self.reach.tree_depth(y) {
                x = self.reach.tree_parent(x) as usize;
            }
            while self.reach.tree_depth(y) > self.reach.tree_depth(x) {
                y = self.reach.tree_parent(y) as usize;
            }
            while x != y {
                x = self.reach.tree_parent(x) as usize;
                y = self.reach.tree_parent(y) as usize;
            }
            debug_assert_ne!(x as u32, NONE);
            // The LCA of extra-free concepts is itself extra-free, so its
            // ancestor closure is exactly the tree chain.
            return Closure::from_sorted(self.reach.ancestors_of(x));
        }
        self.ancestors(a).intersection(&self.ancestors(b))
    }

    /// The most general ancestors of `l`: the roots in its ancestor
    /// closure. Each ancestor chain ends at exactly one forest root, so
    /// this is the deduplicated set of tree roots over `l` and its extra
    /// interval roots — no closure materialization.
    pub fn most_general_ancestors(&self, l: NodeLabel) -> Vec<NodeLabel> {
        if !self.contains(l) {
            return Vec::new();
        }
        let v = l.index();
        let mut out = vec![self.reach.tree_root(v)];
        if let Some(extra) = self.reach.extra_of(v) {
            for &r in extra {
                out.push(self.reach.tree_root(r as usize));
            }
        }
        out.sort_unstable();
        out.dedup();
        out.into_iter().map(NodeLabel).collect()
    }

    /// The unique most general ancestor of `l`, or `None` if there are
    /// several (run [`Taxonomy::unify_most_general`] first in that case).
    pub fn most_general_ancestor(&self, l: NodeLabel) -> Option<NodeLabel> {
        let mga = self.most_general_ancestors(l);
        match mga.as_slice() {
            [only] => Some(*only),
            _ => None,
        }
    }

    /// Ensures every concept has a unique most general ancestor by adding
    /// artificial root concepts, as prescribed in §3 Step 1 of the paper
    /// ("an artificial node with a unique label l_r is introduced as the
    /// common ancestor of nodes in Ancs(l)").
    ///
    /// Roots are grouped by co-reachability: if any label reaches two roots,
    /// those roots must end up under the same artificial ancestor (grouping
    /// transitively, so the result is well defined). Returns `self`
    /// unchanged (cloned) when every concept already has a unique root.
    pub fn unify_most_general(&self) -> Taxonomy {
        let n = self.concept_count();
        // Union-find over root ids.
        let mut uf: Vec<usize> = (0..n).collect();
        fn find(uf: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while uf[r] != r {
                r = uf[r];
            }
            let mut c = x;
            while uf[c] != r {
                let next = uf[c];
                uf[c] = r;
                c = next;
            }
            r
        }
        for l in self.concepts() {
            let mga = self.most_general_ancestors(l);
            for w in mga.windows(2) {
                let (a, b) = (find(&mut uf, w[0].index()), find(&mut uf, w[1].index()));
                if a != b {
                    uf[a] = b;
                }
            }
        }
        // Collect groups with more than one root.
        let mut groups: std::collections::HashMap<usize, Vec<NodeLabel>> =
            std::collections::HashMap::new();
        for &r in &self.roots {
            let rep = find(&mut uf, r.index());
            groups.entry(rep).or_default().push(r);
        }
        let mut multi: Vec<Vec<NodeLabel>> = groups.into_values().filter(|g| g.len() > 1).collect();
        if multi.is_empty() {
            return self.clone();
        }
        multi.sort_by_key(|g| g[0]); // deterministic id assignment
        let mut parents = self.parents.to_rows();
        let mut children = self.children.to_rows();
        let mut present = self.present.clone();
        for group in multi {
            let new_id = NodeLabel(parents.len() as u32);
            parents.push(Vec::new());
            children.push(Vec::new());
            present.push(true);
            for root in group {
                parents[root.index()].push(new_id);
                children[new_id.index()].push(root);
            }
        }
        Self::from_relations_masked(&parents, &children, present, n)
            .expect("adding fresh roots cannot create a cycle") // tsg-lint: allow(panic) — adding fresh roots cannot create a cycle
    }

    /// Restricts the taxonomy to the concepts in `keep` (a bitset over
    /// concept ids), implementing enhancement *b* of §3: pruning
    /// generalized-infrequent concepts.
    ///
    /// # Panics
    /// Panics if `keep` is not upward-closed (a kept concept with a pruned
    /// parent): generalized frequency is monotone upward, so a correct
    /// caller can never produce that shape, and silently reconnecting would
    /// hide a support-computation bug.
    pub fn restrict(&self, keep: &BitSet) -> Taxonomy {
        let n = self.concept_count();
        assert_eq!(keep.universe(), n, "keep mask universe mismatch");
        let mut parents = vec![Vec::new(); n];
        let mut children = vec![Vec::new(); n];
        let mut present = vec![false; n];
        for i in 0..n {
            if !self.present[i] || !keep.contains(i) {
                continue;
            }
            present[i] = true;
            for &p in self.parents.row(i) {
                assert!(
                    keep.contains(p.index()) && self.present[p.index()],
                    "restrict: kept concept {i} has pruned parent {p} — keep set must be upward-closed"
                );
                parents[i].push(p);
                children[p.index()].push(NodeLabel(i as u32));
            }
        }
        Self::from_relations_masked(&parents, &children, present, self.artificial_from)
            .expect("restriction of a DAG is a DAG") // tsg-lint: allow(panic) — restriction of a DAG is a DAG
    }

    /// For every concept, the number of **distinct database graphs**
    /// containing a vertex whose label is a (reflexive) descendant of that
    /// concept — i.e. the generalized support count of the size-1 pattern
    /// with that label.
    ///
    /// This drives enhancement *b* (pruning concepts below the support
    /// threshold) and the Apriori filter of Step 3 ("labels that do not
    /// appear in at least θ·|D| distinct graphs are not considered during
    /// the construction of OI(n)").
    pub fn generalized_label_frequencies(&self, db: &GraphDatabase) -> Vec<usize> {
        let n = self.concept_count();
        let mut counts = vec![0usize; n];
        // Per-graph dedup via an epoch-stamped scratch array: O(ancestors
        // touched) per graph instead of clearing an n-bit set each time.
        let mut stamp = vec![0u32; n];
        let mut epoch = 0u32;
        let mut distinct: Vec<NodeLabel> = Vec::new();
        for (_, g) in db.iter() {
            epoch += 1;
            distinct.clear();
            distinct.extend_from_slice(g.labels());
            distinct.sort_unstable();
            distinct.dedup();
            for &l in &distinct {
                if l.index() >= n {
                    continue;
                }
                for a in self.ancestors(l).iter() {
                    if stamp[a] != epoch {
                        stamp[a] = epoch;
                        counts[a] += 1;
                    }
                }
            }
        }
        counts
    }

    /// The is-a edges as `(child, parent)` pairs (for serialization and
    /// round-tripping through text formats).
    pub fn edge_list(&self) -> Vec<(NodeLabel, NodeLabel)> {
        let mut edges = Vec::new();
        for i in 0..self.concept_count() {
            for &p in self.parents.row(i) {
                edges.push((NodeLabel(i as u32), p));
            }
        }
        edges
    }

    /// Total number of is-a edges (the paper's "relationship count").
    pub fn relationship_count(&self) -> usize {
        self.parents.item_count()
    }

    /// Resident bytes of the reachability labeling plus cross-link
    /// fallback sets — the structure that replaced the dense `O(n²)`-bit
    /// closure matrix. Excludes the adjacency lists and the closure memo
    /// (see [`Taxonomy::memo_bytes`]).
    pub fn closure_bytes(&self) -> usize {
        self.reach.closure_bytes()
    }

    /// Current resident bytes of memoized [`Closure`] materializations.
    pub fn memo_bytes(&self) -> usize {
        self.memo.bytes()
    }

    /// Resident bytes of the parent/child adjacency lists.
    pub fn adjacency_bytes(&self) -> usize {
        self.parents.heap_bytes() + self.children.heap_bytes()
    }

    /// Number of concepts whose ancestry needs a cross-link fallback set
    /// (zero for a pure tree such as NCBI).
    pub fn cross_link_concepts(&self) -> usize {
        self.reach.extra_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::taxonomy_from_edges;
    use tsg_graph::{EdgeLabel, LabeledGraph};

    fn l(v: u32) -> NodeLabel {
        NodeLabel(v)
    }

    /// A 3-level tree: 0 root; 1, 2 under 0; 3, 4 under 1; 5 under 2.
    fn tree() -> Taxonomy {
        taxonomy_from_edges(6, [(1, 0), (2, 0), (3, 1), (4, 1), (5, 2)]).unwrap()
    }

    #[test]
    fn closures_and_depth() {
        let t = tree();
        assert_eq!(t.concept_count(), 6);
        assert_eq!(t.roots(), &[l(0)]);
        assert_eq!(t.ancestors(l(3)).to_vec(), vec![0, 1, 3]);
        assert_eq!(t.descendants(l(0)).to_vec(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(t.descendants(l(1)).to_vec(), vec![1, 3, 4]);
        assert_eq!(t.depth(l(0)), 0);
        assert_eq!(t.depth(l(5)), 2);
        assert_eq!(t.max_depth(), 2);
        assert!(t.is_ancestor(l(0), l(5)));
        assert!(t.is_ancestor(l(5), l(5)), "reflexive");
        assert!(!t.is_ancestor(l(5), l(0)));
        assert_eq!(t.strict_ancestor_count(l(3)), 2);
        assert_eq!(t.cross_link_concepts(), 0, "a tree needs no fallback sets");
    }

    #[test]
    fn diamond_depth_is_longest_path() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 4 -> 3 (3 has parents 1 and 4).
        let t = taxonomy_from_edges(5, [(1, 0), (2, 0), (3, 1), (4, 2), (3, 4)]).unwrap();
        assert_eq!(t.depth(l(3)), 3, "longest path wins");
        assert_eq!(t.ancestors(l(3)).to_vec(), vec![0, 1, 2, 3, 4]);
        assert!(t.cross_link_concepts() > 0, "diamond needs a fallback set");
        assert_eq!(t.ancestor_count(l(3)), 5);
        assert_eq!(t.strict_ancestor_count(l(3)), 4);
    }

    #[test]
    fn cross_link_reachability_through_second_parent() {
        // 0 -> 1, 0 -> 2, 2 -> 3; cross-link 3 is-a 1 as second parent.
        let t = taxonomy_from_edges(4, [(1, 0), (2, 0), (3, 2), (3, 1)]).unwrap();
        assert!(t.is_ancestor(l(1), l(3)), "cross-link parent reachable");
        assert!(t.is_ancestor(l(2), l(3)), "tree parent reachable");
        assert!(t.is_ancestor(l(0), l(3)));
        assert!(!t.is_ancestor(l(3), l(1)));
        assert_eq!(t.descendants(l(1)).to_vec(), vec![1, 3]);
        assert_eq!(t.descendants(l(2)).to_vec(), vec![2, 3]);
        assert_eq!(t.ancestors(l(3)).to_vec(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn common_ancestors_tree_and_dag_paths() {
        let t = tree();
        assert_eq!(t.common_ancestors(l(3), l(4)).to_vec(), vec![0, 1]);
        assert_eq!(t.common_ancestors(l(3), l(5)).to_vec(), vec![0]);
        assert_eq!(t.common_ancestors(l(3), l(3)).to_vec(), vec![0, 1, 3]);
        // Multi-root: no shared root means no common ancestors.
        let two = taxonomy_from_edges(4, [(2, 0), (3, 1)]).unwrap();
        assert!(two.common_ancestors(l(2), l(3)).is_empty());
        // DAG path: diamond 0->1->3, 0->2->3.
        let d = taxonomy_from_edges(4, [(1, 0), (2, 0), (3, 1), (3, 2)]).unwrap();
        assert_eq!(d.common_ancestors(l(1), l(3)).to_vec(), vec![0, 1]);
        assert_eq!(d.common_ancestors(l(1), l(2)).to_vec(), vec![0]);
    }

    #[test]
    fn most_general_ancestor_unique_in_single_root() {
        let t = tree();
        for c in t.concepts() {
            assert_eq!(t.most_general_ancestor(c), Some(l(0)));
        }
    }

    #[test]
    fn unify_most_general_adds_artificial_root_for_shared_descendants() {
        // Two roots 0 and 1 sharing child 2; root 3 isolated with child 4.
        let t = taxonomy_from_edges(5, [(2, 0), (2, 1), (4, 3)]).unwrap();
        assert_eq!(t.most_general_ancestor(l(2)), None, "ambiguous before unify");
        let u = t.unify_most_general();
        assert_eq!(u.concept_count(), 6);
        let art = l(5);
        assert!(u.is_artificial(art));
        assert!(!u.is_artificial(l(4)));
        assert_eq!(u.most_general_ancestor(l(2)), Some(art));
        assert_eq!(u.most_general_ancestor(l(0)), Some(art));
        assert_eq!(
            u.most_general_ancestor(l(4)),
            Some(l(3)),
            "independent root untouched"
        );
        assert_eq!(u.roots().len(), 2);
    }

    #[test]
    fn unify_is_identity_when_unambiguous() {
        let t = tree();
        let u = t.unify_most_general();
        assert_eq!(u.concept_count(), t.concept_count());
        assert_eq!(u.roots(), t.roots());
    }

    #[test]
    fn unify_groups_transitively() {
        // Roots 0,1,2; label 3 reaches 0,1; label 4 reaches 1,2.
        // All three roots must share one artificial ancestor.
        let t = taxonomy_from_edges(5, [(3, 0), (3, 1), (4, 1), (4, 2)]).unwrap();
        let u = t.unify_most_general();
        assert_eq!(u.concept_count(), 6);
        let mga3 = u.most_general_ancestor(l(3)).unwrap();
        let mga4 = u.most_general_ancestor(l(4)).unwrap();
        assert_eq!(mga3, mga4);
        assert!(u.is_artificial(mga3));
    }

    #[test]
    fn restrict_drops_downward_closed_complement() {
        let t = tree();
        // Keep 0, 1, 3 (prune 2, 4, 5) — upward closed.
        let keep = BitSet::from_iter_with_universe(6, [0usize, 1, 3]);
        let r = t.restrict(&keep);
        assert_eq!(r.present_count(), 3);
        assert!(r.contains(l(1)));
        assert!(!r.contains(l(2)));
        assert_eq!(r.children(l(1)), &[l(3)]);
        assert_eq!(r.children(l(0)), &[l(1)]);
        assert_eq!(r.roots(), &[l(0)]);
        assert_eq!(r.max_depth(), 2);
        assert_eq!(r.concept_count(), 6, "id space preserved");
        // Absent concepts have empty closures and no ancestry at all.
        assert!(r.ancestors(l(5)).is_empty());
        assert!(r.descendants(l(5)).is_empty());
        assert!(!r.is_ancestor(l(5), l(5)), "absent is not its own ancestor");
        assert!(!r.is_ancestor(l(0), l(5)));
        assert!(r.most_general_ancestors(l(5)).is_empty());
    }

    #[test]
    #[should_panic(expected = "upward-closed")]
    fn restrict_rejects_non_upward_closed_keep() {
        let keep = BitSet::from_iter_with_universe(6, [0usize, 3]); // 3 kept, parent 1 pruned
        tree().restrict(&keep);
    }

    #[test]
    fn generalized_label_frequencies_count_ancestor_hits() {
        let t = tree();
        // G1 has labels {3}, G2 has {4, 5}, G3 has {3, 3}.
        let mk = |labels: &[u32]| {
            let mut g = LabeledGraph::with_nodes(labels.iter().map(|&x| l(x)));
            for i in 1..labels.len() {
                g.add_edge(i - 1, i, EdgeLabel(0)).unwrap();
            }
            g
        };
        let db = GraphDatabase::from_graphs(vec![mk(&[3]), mk(&[4, 5]), mk(&[3, 3])]);
        let f = t.generalized_label_frequencies(&db);
        assert_eq!(f[0], 3, "root covers everything");
        assert_eq!(f[1], 3, "1 covers 3 and 4");
        assert_eq!(f[2], 1, "2 covers only 5");
        assert_eq!(f[3], 2);
        assert_eq!(f[4], 1);
        assert_eq!(f[5], 1);
    }

    #[test]
    fn avg_ancestor_count_matches_hand_computation() {
        let t = tree();
        // strict ancestors: 0:0, 1:1, 2:1, 3:2, 4:2, 5:2 → mean 8/6.
        assert!((t.avg_ancestor_count() - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn edge_list_roundtrips() {
        let t = tree();
        let edges: Vec<(u32, u32)> = t.edge_list().iter().map(|&(c, p)| (c.0, p.0)).collect();
        let t2 = taxonomy_from_edges(6, edges).unwrap();
        assert_eq!(t2.relationship_count(), t.relationship_count());
        for c in t.concepts() {
            assert_eq!(t2.ancestors(c).to_vec(), t.ancestors(c).to_vec());
        }
    }

    #[test]
    fn closure_memo_returns_identical_views() {
        let t = tree();
        let a1 = t.ancestors(l(3));
        let a2 = t.ancestors(l(3));
        assert_eq!(a1, a2);
        assert!(t.memo_bytes() > 0, "second query served from the memo");
        // Clones start with a cold memo but identical answers.
        let c = t.clone();
        assert_eq!(c.memo_bytes(), 0);
        assert_eq!(c.ancestors(l(3)), a1);
    }

    #[test]
    fn closure_bytes_are_linear_not_quadratic() {
        let t = tree();
        // 6 concepts: the labeling is a handful of u32 arrays, nowhere near
        // the 6×6-bit dense matrix ballpark once n grows; just pin that the
        // accessor reports something sane and small here.
        assert!(t.closure_bytes() < 1024, "got {}", t.closure_bytes());
    }
}
