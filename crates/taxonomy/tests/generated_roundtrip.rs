//! Structural roundtrip on seeded [`tsg_testkit`] taxonomies: rebuilding
//! a generated taxonomy from its own edge list must reproduce the full
//! closure structure (ancestors, roots, depths).

use tsg_graph::NodeLabel;
use tsg_taxonomy::taxonomy_from_edges;
use tsg_testkit::gen::{case_count, cases};

const BASE_SEED: u64 = 0x7a78_6f67_7261_6d06;

#[test]
fn edge_list_rebuild_preserves_closures() {
    for c in cases(BASE_SEED, case_count(64)) {
        let t = &c.taxonomy;
        let edges: Vec<(u32, u32)> = t.edge_list().iter().map(|&(c, p)| (c.0, p.0)).collect();
        let rebuilt = taxonomy_from_edges(t.concept_count(), edges)
            .unwrap_or_else(|e| panic!("seed {:#x}: rebuild failed: {e}", c.seed));
        assert_eq!(rebuilt.concept_count(), t.concept_count());
        assert_eq!(rebuilt.roots(), t.roots(), "seed {:#x}", c.seed);
        for i in 0..t.concept_count() {
            let l = NodeLabel(i as u32);
            assert_eq!(rebuilt.ancestors(l), t.ancestors(l), "seed {:#x} concept {i}", c.seed);
            assert_eq!(rebuilt.depth(l), t.depth(l), "seed {:#x} concept {i}", c.seed);
            assert_eq!(rebuilt.parents(l), t.parents(l), "seed {:#x} concept {i}", c.seed);
        }
    }
}
