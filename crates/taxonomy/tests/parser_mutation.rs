//! Parser hardening by seeded mutation for the taxonomy `c`/`p` format:
//! corrupt valid serializations from the testkit generators and require
//! a structured result — never a panic, a silent wrap, or an
//! input-disproportionate allocation.
//!
//! Pin `PROPTEST_RNG_SEED` to replay a CI run exactly.

use proptest::prelude::*;
use tsg_graph::GraphError;
use tsg_taxonomy::io::{read_taxonomy, write_taxonomy};
use tsg_testkit::corrupt::Corruptor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn corrupted_valid_serializations_never_panic(seed in 0u64..u64::MAX) {
        let case = tsg_testkit::case(seed);
        let text = write_taxonomy(&case.taxonomy, None);
        let mut corruptor = Corruptor::new(seed);
        for _round in 0..8 {
            let mutant = corruptor.corrupt(&text);
            let _ = read_taxonomy(&mutant);
        }
    }

    #[test]
    fn survivors_reserialize_cleanly(seed in 0u64..u64::MAX) {
        let case = tsg_testkit::case(seed);
        let mut corruptor = Corruptor::new(seed.rotate_left(29));
        let mutant = corruptor.corrupt(&write_taxonomy(&case.taxonomy, None));
        if let Ok((names, taxonomy)) = read_taxonomy(&mutant) {
            let (_, back) = read_taxonomy(&write_taxonomy(&taxonomy, Some(&names)))
                .expect("reparse of own output");
            prop_assert_eq!(back.concept_count(), taxonomy.concept_count());
            prop_assert_eq!(back.relationship_count(), taxonomy.relationship_count());
        }
    }
}

fn parse_err(text: &str) -> GraphError {
    read_taxonomy(text).expect_err("must be rejected")
}

/// The adversarial catalogue as pinned unit cases.
#[test]
fn adversarial_records_are_rejected() {
    // Duplicate concept id (non-dense).
    assert!(matches!(
        parse_err("c 0 a\nc 0 b\n"),
        GraphError::Parse { line: 2, .. }
    ));
    // Duplicate concept *name* — the label table would silently alias
    // two distinct concepts.
    assert!(matches!(
        parse_err("c 0 same\nc 1 same\n"),
        GraphError::Parse { line: 2, .. }
    ));
    // Absurd declared concept id: must error, not allocate.
    assert!(matches!(
        parse_err("c 99999999999999999999 x\n"),
        GraphError::Parse { line: 1, .. }
    ));
    // is-a referencing a concept that never appears.
    assert!(read_taxonomy("c 0 a\np 5 0\n").is_err());
    // is-a field past u32::MAX must error, not wrap.
    assert!(matches!(
        parse_err("c 0 a\np 4294967296 0\n"),
        GraphError::Parse { line: 2, .. }
    ));
    // Trailing tokens on an is-a record.
    assert!(matches!(
        parse_err("c 0 a\nc 1 b\np 1 0 junk\n"),
        GraphError::Parse { line: 3, .. }
    ));
    // Self-loop and cycle.
    assert!(read_taxonomy("c 0 a\np 0 0\n").is_err());
    assert!(read_taxonomy("c 0 a\nc 1 b\np 0 1\np 1 0\n").is_err());
    // Unknown record type.
    assert!(matches!(
        parse_err("q 1 2\n"),
        GraphError::Parse { line: 1, .. }
    ));
}

/// Multi-word names are preserved verbatim, not truncated to the first
/// token (truncation also manufactured bogus duplicate-name errors for
/// names sharing a first word).
#[test]
fn multi_word_names_roundtrip() {
    let text = "c 0 molecular function\nc 1 molecular transport\np 1 0\n";
    let (names, taxonomy) = read_taxonomy(text).unwrap();
    assert_eq!(names.name(tsg_graph::NodeLabel(0)), Some("molecular function"));
    assert_eq!(names.name(tsg_graph::NodeLabel(1)), Some("molecular transport"));
    let (names2, _) = read_taxonomy(&write_taxonomy(&taxonomy, Some(&names))).unwrap();
    assert_eq!(names2.name(tsg_graph::NodeLabel(1)), Some("molecular transport"));
}

#[test]
fn truncated_records_are_malformed() {
    for text in ["c", "c 0 a\np", "c 0 a\np 0"] {
        assert!(
            read_taxonomy(text).is_err(),
            "{text:?} must be rejected"
        );
    }
}
