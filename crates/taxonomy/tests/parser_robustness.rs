//! The taxonomy text parser must never panic.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn read_taxonomy_never_panics(text in ".{0,200}") {
        let _ = tsg_taxonomy::io::read_taxonomy(&text);
    }

    #[test]
    fn read_taxonomy_handles_recordish_garbage(
        lines in prop::collection::vec("(c|p|q)( -?[0-9a-z#]{1,5}){0,3}", 0..12)
    ) {
        let text = lines.join("\n");
        let _ = tsg_taxonomy::io::read_taxonomy(&text);
    }
}
