//! Equivalence of the interval-labeled reachability layer against a
//! naive transitive-closure model, over multi-root cross-linked DAGs.
//!
//! The model recomputes every reflexive closure by breadth-first walks
//! over the parent/child lists — the definitionally-correct O(n²) answer
//! the interval labeling (spanning-forest pre/post intervals plus
//! extra-ancestor interval roots) must reproduce exactly: `is_ancestor`
//! on all pairs, materialized ancestor/descendant closures, ancestor
//! counts, common-ancestor sets (both the tree-LCA fast path and the
//! cross-link merge path), and most-general-ancestor sets, including
//! after `restrict` pruning and `unify_most_general` root grafting.
//!
//! Runs in the `scripts/ci.sh` deep stage with a pinned seed and 256
//! cases per property.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tsg_bitset::BitSet;
use tsg_graph::NodeLabel;
use tsg_taxonomy::Taxonomy;
use tsg_testkit::gen::arb_dag_taxonomy;

/// Reflexive closure of `start` following `step` (parents or children).
fn walk(t: &Taxonomy, start: NodeLabel, up: bool) -> BTreeSet<usize> {
    let mut seen = BTreeSet::new();
    if !t.contains(start) {
        return seen;
    }
    let mut frontier = vec![start];
    seen.insert(start.index());
    while let Some(v) = frontier.pop() {
        let next = if up { t.parents(v) } else { t.children(v) };
        for &w in next {
            if seen.insert(w.index()) {
                frontier.push(w);
            }
        }
    }
    seen
}

fn assert_equivalent(t: &Taxonomy) {
    let concepts: Vec<NodeLabel> = t.concepts().collect();
    let naive_anc: Vec<BTreeSet<usize>> =
        concepts.iter().map(|&c| walk(t, c, true)).collect();
    for (i, &c) in concepts.iter().enumerate() {
        let anc = &naive_anc[i];
        assert_eq!(
            t.ancestors(c).to_vec(),
            anc.iter().copied().collect::<Vec<_>>(),
            "ancestors({c}) diverge"
        );
        assert_eq!(t.ancestor_count(c), anc.len(), "ancestor_count({c})");
        let desc = walk(t, c, false);
        assert_eq!(
            t.descendants(c).to_vec(),
            desc.iter().copied().collect::<Vec<_>>(),
            "descendants({c}) diverge"
        );
        let mga: Vec<NodeLabel> = t
            .roots()
            .iter()
            .copied()
            .filter(|r| anc.contains(&r.index()))
            .collect();
        assert_eq!(t.most_general_ancestors(c), mga, "mga({c})");
        for (j, &d) in concepts.iter().enumerate() {
            assert_eq!(
                t.is_ancestor(c, d),
                naive_anc[j].contains(&c.index()),
                "is_ancestor({c}, {d})"
            );
            let common: Vec<usize> =
                anc.intersection(&naive_anc[j]).copied().collect();
            assert_eq!(
                t.common_ancestors(c, d).to_vec(),
                common,
                "common_ancestors({c}, {d})"
            );
        }
    }
    // Absent / out-of-range ids never participate in ancestry.
    let ghost = NodeLabel(t.concept_count() as u32 - 1);
    if !t.contains(ghost) {
        assert!(t.ancestors(ghost).is_empty());
        assert!(t.descendants(ghost).is_empty());
        assert!(!t.is_ancestor(ghost, ghost));
    }
}

proptest! {
    #[test]
    fn interval_labels_match_naive_closures(t in arb_dag_taxonomy(16)) {
        assert_equivalent(&t);
    }

    #[test]
    fn equivalence_survives_unification(t in arb_dag_taxonomy(12)) {
        assert_equivalent(&t.unify_most_general());
    }

    #[test]
    fn equivalence_survives_restriction(
        t in arb_dag_taxonomy(12),
        picks in prop::collection::vec(0..64usize, 1..4),
    ) {
        // An upward-closed keep set: the union of the ancestor closures
        // of a few randomly picked concepts.
        let n = t.concept_count();
        let concepts: Vec<NodeLabel> = t.concepts().collect();
        let mut keep = BitSet::new(n);
        for p in picks {
            let c = concepts[p % concepts.len()];
            for a in t.ancestors(c).iter() {
                keep.insert(a);
            }
        }
        let r = t.restrict(&keep);
        prop_assert!(r.present_count() < n || t.present_count() == r.present_count());
        assert_equivalent(&r);
    }

    #[test]
    fn deep_chains_and_wide_fans_stay_exact(depth in 2..40usize, fan in 1..6usize) {
        // A comb: one chain of `depth` concepts, each chain node also
        // parenting `fan` leaves, plus every leaf cross-linked to the
        // chain head — adversarial for interval nesting.
        let chain = depth;
        let leaves = depth * fan;
        let n = chain + leaves;
        let mut edges = Vec::new();
        for i in 1..chain {
            edges.push((i as u32, (i - 1) as u32));
        }
        for l in 0..leaves {
            let owner = l / fan;
            edges.push(((chain + l) as u32, owner as u32));
            if owner != 0 {
                edges.push(((chain + l) as u32, 0));
            }
        }
        let t = tsg_taxonomy::taxonomy_from_edges(n, edges).unwrap();
        assert_equivalent(&t);
    }
}
