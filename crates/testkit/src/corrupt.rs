//! Seeded corruption operators for line-oriented text serializations.
//!
//! The parser-hardening suites take a *valid* serialization (produced by
//! the generators in [`crate::gen`] plus the crates' own writers) and
//! mutate it with a seeded operator pipeline: byte flips, line
//! duplication/deletion/swaps, truncation mid-record, digit-run
//! scrambles (including values far past `u32::MAX`/`usize::MAX`), and
//! junk-line insertion. Valid-input-adjacent garbage exercises far more
//! parser branches than uniformly random bytes — the mutants keep the
//! record skeleton (`t`/`v`/`e`, `c`/`p`) that steers parsing into the
//! deep paths where panics and overflow bugs hide.
//!
//! Everything is deterministic from the seed; a failing mutant reprints
//! from `(seed, round)` alone.

use proptest::TestRng;

/// A seeded stream of corruption decisions.
pub struct Corruptor {
    rng: TestRng,
}

/// Digit runs that overflow `u32`, `usize`, or look negative/fractional —
/// the classic "absurd declared count" payloads.
const ABSURD_NUMBERS: [&str; 6] = [
    "4294967296",
    "18446744073709551616",
    "99999999999999999999999999",
    "-1",
    "3.5",
    "0x10",
];

impl Corruptor {
    /// A corruptor whose whole decision stream derives from `seed`.
    pub fn new(seed: u64) -> Self {
        Corruptor {
            rng: TestRng::new(seed ^ 0x00c0_defa_u64.rotate_left(17)),
        }
    }

    fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.rng.next_u64() % n as u64) as usize
    }

    /// Applies 1–3 random operators to `text` and returns the mutant.
    /// The result may or may not still parse; the only contract the
    /// parsers owe it is "structured error or success, never a panic".
    pub fn corrupt(&mut self, text: &str) -> String {
        let mut mutant = text.to_owned();
        for _ in 0..1 + self.below(3) {
            mutant = self.apply_one(&mutant);
        }
        mutant
    }

    fn apply_one(&mut self, text: &str) -> String {
        match self.below(7) {
            0 => self.flip_byte(text),
            1 => self.drop_line(text),
            2 => self.dup_line(text),
            3 => self.swap_lines(text),
            4 => self.truncate(text),
            5 => self.scramble_number(text),
            _ => self.insert_junk(text),
        }
    }

    fn flip_byte(&mut self, text: &str) -> String {
        if text.is_empty() {
            return text.to_owned();
        }
        let mut bytes = text.as_bytes().to_vec();
        let i = self.below(bytes.len());
        bytes[i] ^= 1 + self.below(255) as u8;
        // The parsers take &str, so the mutant must stay UTF-8; lossy
        // replacement keeps the flip while staying in-type.
        String::from_utf8_lossy(&bytes).into_owned()
    }

    fn drop_line(&mut self, text: &str) -> String {
        let mut lines: Vec<&str> = text.lines().collect();
        if lines.is_empty() {
            return text.to_owned();
        }
        let i = self.below(lines.len());
        lines.remove(i);
        lines.join("\n")
    }

    fn dup_line(&mut self, text: &str) -> String {
        let mut lines: Vec<&str> = text.lines().collect();
        if lines.is_empty() {
            return text.to_owned();
        }
        let i = self.below(lines.len());
        lines.insert(i, lines[i]);
        lines.join("\n")
    }

    fn swap_lines(&mut self, text: &str) -> String {
        let mut lines: Vec<&str> = text.lines().collect();
        if lines.len() < 2 {
            return text.to_owned();
        }
        let i = self.below(lines.len());
        let j = self.below(lines.len());
        lines.swap(i, j);
        lines.join("\n")
    }

    fn truncate(&mut self, text: &str) -> String {
        if text.is_empty() {
            return text.to_owned();
        }
        let mut cut = self.below(text.len());
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        text[..cut].to_owned()
    }

    /// Replaces one whitespace-delimited digit-run with an absurd value.
    fn scramble_number(&mut self, text: &str) -> String {
        let numbers: Vec<(usize, usize)> = text
            .split_whitespace()
            .filter(|t| t.bytes().all(|b| b.is_ascii_digit()) && !t.is_empty())
            .map(|t| {
                let start = t.as_ptr() as usize - text.as_ptr() as usize;
                (start, t.len())
            })
            .collect();
        if numbers.is_empty() {
            return text.to_owned();
        }
        let (start, len) = numbers[self.below(numbers.len())];
        let replacement = ABSURD_NUMBERS[self.below(ABSURD_NUMBERS.len())];
        format!("{}{}{}", &text[..start], replacement, &text[start + len..])
    }

    /// Applies 1–3 random byte-level operators to a binary stream and
    /// returns the mutant — the binary-format counterpart of
    /// [`Corruptor::corrupt`], aimed at the length-prefixed spill format
    /// in `tsg_graph::binary`. Operators favor framing damage (flipped
    /// length-prefix bytes, truncation mid-record, absurd u32s, spliced
    /// and duplicated ranges) because the framing is where a reader can
    /// be tricked into huge allocations or silent short reads.
    pub fn corrupt_bytes(&mut self, bytes: &[u8]) -> Vec<u8> {
        let mut mutant = bytes.to_vec();
        for _ in 0..1 + self.below(3) {
            mutant = self.apply_one_binary(&mutant);
        }
        mutant
    }

    fn apply_one_binary(&mut self, bytes: &[u8]) -> Vec<u8> {
        if bytes.is_empty() {
            return Vec::new();
        }
        let mut out = bytes.to_vec();
        match self.below(6) {
            0 => {
                // Flip one byte anywhere (headers included).
                let i = self.below(out.len());
                out[i] ^= 1 + self.below(255) as u8;
            }
            1 => {
                // Truncate mid-stream.
                out.truncate(self.below(out.len()));
            }
            2 => {
                // Overwrite a 4-byte window with an absurd u32 — lands on
                // length prefixes, counts, labels, and endpoints alike.
                if out.len() >= 4 {
                    let absurd = [u32::MAX, u32::MAX - 3, 1 << 30, 0][self.below(4)];
                    let i = self.below(out.len() - 3);
                    out[i..i + 4].copy_from_slice(&absurd.to_le_bytes());
                }
            }
            3 => {
                // Delete a short range (shifts all later framing).
                let start = self.below(out.len());
                let len = 1 + self.below(8.min(out.len() - start));
                out.drain(start..start + len);
            }
            4 => {
                // Duplicate a short range in place.
                let start = self.below(out.len());
                let len = 1 + self.below(8.min(out.len() - start));
                let dup: Vec<u8> = out[start..start + len].to_vec();
                let at = self.below(out.len() + 1);
                out.splice(at..at, dup);
            }
            _ => {
                // Append junk past the declared last record.
                let extra = 1 + self.below(16);
                for _ in 0..extra {
                    out.push(self.below(256) as u8);
                }
            }
        }
        out
    }

    fn insert_junk(&mut self, text: &str) -> String {
        const JUNK: [&str; 6] = [
            "t # 18446744073709551615",
            "v 0",
            "e 0",
            "p 0",
            "c",
            "\u{0} \u{7f} \t\t",
        ];
        let mut lines: Vec<&str> = text.lines().collect();
        let i = if lines.is_empty() {
            0
        } else {
            self.below(lines.len() + 1)
        };
        lines.insert(i, JUNK[self.below(JUNK.len())]);
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let text = "t # 0\nv 0 1\nv 1 2\ne 0 1 0\n";
        let a: Vec<String> = {
            let mut c = Corruptor::new(42);
            (0..10).map(|_| c.corrupt(text)).collect()
        };
        let b: Vec<String> = {
            let mut c = Corruptor::new(42);
            (0..10).map(|_| c.corrupt(text)).collect()
        };
        assert_eq!(a, b);
        let mut c = Corruptor::new(43);
        let other: Vec<String> = (0..10).map(|_| c.corrupt(text)).collect();
        assert_ne!(a, other, "different seeds diverge");
    }

    #[test]
    fn operators_eventually_mutate() {
        let text = "c 0 root\nc 1 kid\np 1 0\n";
        let mut c = Corruptor::new(7);
        let changed = (0..50).filter(|_| c.corrupt(text) != text).count();
        assert!(changed > 25, "only {changed}/50 mutants differed");
    }
}
