//! Deterministic fault and schedule plans for the parallel engines.
//!
//! The parallel miners' failure modes — a panicking sink, a worker dying
//! mid-task, a receiver abandoning the pipeline channel, pathological
//! steal schedules — are all timing-dependent in the wild. This module
//! pins them down: every plan is a plain value, every injected event
//! fires at a deterministic point (the Nth task, the Nth class, a seeded
//! coin per spawn), so a failing configuration replays exactly.
//!
//! Plans thread into the engines through their `#[doc(hidden)]` hooks:
//! [`SearchFaults`] into the work-stealing gSpan scheduler (used by both
//! `tsg_gspan::mine_parallel_with` and `taxogram_core::mine_stealing`),
//! [`PipelineFaults`] into the streaming pipeline's channel workers.

use crate::gen::Case;
use taxogram_core::{
    mine_parallel_governed, mine_pipelined_faulted, mine_pipelined_governed_faulted,
    mine_sharded_faulted, mine_stealing_faulted, mine_stealing_governed_faulted, Budget,
    GovernOptions, MiningOutcome, MiningResult, PipelineFaults, PipelineOptions, SearchFaults,
    ShardFaults, ShardOptions, ShardedOutcome, StealOptions, Taxogram, TaxogramConfig,
    TaxogramError,
};

/// The thread counts the acceptance matrix sweeps.
pub const FAULT_THREADS: [usize; 3] = [1, 2, 4];

/// The channel/deque capacities the acceptance matrix sweeps; capacity 1
/// maximizes contention (every spawn overflows, every send backpressures).
pub const FAULT_CAPACITIES: [usize; 3] = [1, 2, 4];

/// One deterministic parallel-run configuration: scheduler shape plus
/// injected faults.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    /// Worker thread count (0 ⇒ engine default).
    pub threads: usize,
    /// Deque capacity (stealing) / channel capacity (pipelined);
    /// 0 ⇒ engine default.
    pub capacity: usize,
    /// Faults for the work-stealing search.
    pub search: SearchFaults,
    /// Faults for the streaming pipeline.
    pub pipeline: PipelineFaults,
    /// Spill-I/O faults for the sharded out-of-core miner.
    pub shard: ShardFaults,
    /// Governance trigger: cancel at the `n`th class admission (exact and
    /// schedule-independent for the serially-admitting engines).
    pub cancel_after: Option<usize>,
    /// Governance budget: admitted-class ceiling.
    pub max_classes: Option<usize>,
    /// Governance budget: emitted-pattern ceiling.
    pub max_patterns: Option<usize>,
}

impl FaultPlan {
    /// A clean plan (no faults) with the given scheduler shape.
    pub fn shape(threads: usize, capacity: usize) -> Self {
        FaultPlan {
            threads,
            capacity,
            ..FaultPlan::default()
        }
    }

    /// Injects a panic into the `n`th executed search task (stealing
    /// engine) and the `n`th pattern class (pipelined engine).
    pub fn panic_at(mut self, n: usize) -> Self {
        self.search.panic_at_task = Some(n);
        self.pipeline.panic_at_class = Some(n);
        self
    }

    /// Applies a seeded forced-steal schedule to the search.
    pub fn steal_schedule(mut self, seed: u64) -> Self {
        self.search.steal_schedule_seed = Some(seed);
        self
    }

    /// Simulates pipeline receivers dropping after `n` processed items.
    pub fn drop_receiver_after(mut self, n: usize) -> Self {
        self.pipeline.drop_receiver_after = Some(n);
        self
    }

    /// Truncates shard `s`'s spill file mid-stream after writing.
    pub fn truncate_shard(mut self, s: usize) -> Self {
        self.shard.truncate_shard = Some(s);
        self
    }

    /// Overwrites shard `s`'s first record length prefix with an absurd
    /// value after writing.
    pub fn corrupt_length_prefix(mut self, s: usize) -> Self {
        self.shard.corrupt_prefix = Some(s);
        self
    }

    /// Deletes shard `s`'s spill file after writing.
    pub fn missing_shard(mut self, s: usize) -> Self {
        self.shard.delete_shard = Some(s);
        self
    }

    /// Fails the spill write at the `n`th global graph record.
    pub fn spill_write_error_at(mut self, n: usize) -> Self {
        self.shard.write_error_at_record = Some(n);
        self
    }

    /// Governed runs behave as if the cancel token flipped at the `n`th
    /// class admission (`0` cancels before any class).
    pub fn cancel_after(mut self, n: usize) -> Self {
        self.cancel_after = Some(n);
        self
    }

    /// Governed runs admit at most `n` pattern classes.
    pub fn budget_classes(mut self, n: usize) -> Self {
        self.max_classes = Some(n);
        self
    }

    /// Governed runs stop admitting once `n` patterns have been emitted.
    pub fn budget_patterns(mut self, n: usize) -> Self {
        self.max_patterns = Some(n);
        self
    }

    /// The [`GovernOptions`] this plan's governed runners use.
    pub fn govern_options(&self) -> GovernOptions {
        let mut budget = Budget::unlimited();
        if let Some(n) = self.max_classes {
            budget = budget.max_classes(n);
        }
        if let Some(n) = self.max_patterns {
            budget = budget.max_patterns(n);
        }
        GovernOptions {
            cancel: None,
            budget,
            cancel_after_classes: self.cancel_after,
        }
    }

    /// Runs the fused work-stealing engine under this plan.
    pub fn run_stealing(&self, case: &Case) -> Result<MiningResult, TaxogramError> {
        mine_stealing_faulted(
            &self.config(case),
            &case.db,
            &case.taxonomy,
            StealOptions {
                threads: self.threads,
                deque_capacity: self.capacity,
                clamp_to_cores: false,
            },
            self.search,
        )
    }

    /// Runs the streaming pipelined engine under this plan. Note the
    /// engine needs `threads ≥ 2` to exercise the channel (at 1 it falls
    /// back to the serial miner and faults cannot fire).
    pub fn run_pipelined(&self, case: &Case) -> Result<MiningResult, TaxogramError> {
        mine_pipelined_faulted(
            &self.config(case),
            &case.db,
            &case.taxonomy,
            PipelineOptions {
                threads: self.threads,
                channel_capacity: self.capacity,
                clamp_to_cores: false,
            },
            self.pipeline,
        )
    }

    /// Runs the serial engine under this plan's governance.
    pub fn run_serial_governed(&self, case: &Case) -> Result<MiningOutcome, TaxogramError> {
        Taxogram::new(self.config(case)).mine_governed(
            &case.db,
            &case.taxonomy,
            &self.govern_options(),
        )
    }

    /// Runs the barrier engine under this plan's governance.
    pub fn run_barrier_governed(&self, case: &Case) -> Result<MiningOutcome, TaxogramError> {
        mine_parallel_governed(
            &self.config(case),
            &case.db,
            &case.taxonomy,
            self.threads,
            &self.govern_options(),
        )
    }

    /// Runs the pipelined engine under this plan's governance and faults.
    pub fn run_pipelined_governed(&self, case: &Case) -> Result<MiningOutcome, TaxogramError> {
        mine_pipelined_governed_faulted(
            &self.config(case),
            &case.db,
            &case.taxonomy,
            PipelineOptions {
                threads: self.threads,
                channel_capacity: self.capacity,
                clamp_to_cores: false,
            },
            self.pipeline,
            &self.govern_options(),
        )
    }

    /// Runs the work-stealing engine under this plan's governance and
    /// faults.
    pub fn run_stealing_governed(&self, case: &Case) -> Result<MiningOutcome, TaxogramError> {
        mine_stealing_governed_faulted(
            &self.config(case),
            &case.db,
            &case.taxonomy,
            StealOptions {
                threads: self.threads,
                deque_capacity: self.capacity,
                clamp_to_cores: false,
            },
            self.search,
            &self.govern_options(),
        )
    }

    /// Runs the sharded out-of-core miner (ungoverned) under this plan's
    /// spill faults, split into `shards` shards.
    pub fn run_sharded(&self, case: &Case, shards: usize) -> Result<ShardedOutcome, TaxogramError> {
        mine_sharded_faulted(
            &self.config(case),
            &case.db,
            &case.taxonomy,
            &self.shard_options(shards),
            None,
            self.shard,
        )
    }

    /// Runs the sharded out-of-core miner under this plan's governance
    /// and spill faults.
    pub fn run_sharded_governed(
        &self,
        case: &Case,
        shards: usize,
    ) -> Result<ShardedOutcome, TaxogramError> {
        mine_sharded_faulted(
            &self.config(case),
            &case.db,
            &case.taxonomy,
            &self.shard_options(shards),
            Some(&self.govern_options()),
            self.shard,
        )
    }

    fn shard_options(&self, shards: usize) -> ShardOptions {
        ShardOptions {
            shards,
            threads: self.threads.max(1),
            // Capacity doubles as the Pass 2b class batch so the matrix
            // sweeps batch boundaries too.
            class_batch: self.capacity.max(1),
            ..ShardOptions::default()
        }
    }

    fn config(&self, case: &Case) -> TaxogramConfig {
        TaxogramConfig::with_threshold(case.theta).max_edges(crate::metamorphic::MAX_EDGES)
    }
}

/// Asserts the governed `outcome` upholds the partial-result contract
/// against the ungoverned serial result `full`: its patterns are a
/// byte-identical prefix of `full.patterns`, its termination arithmetic
/// is truthful (`classes_finished` matches the result, a complete run
/// has nothing abandoned and the whole stream, an early stop reports a
/// non-`Completed` reason), and the frontier is only populated on early
/// stops.
pub fn assert_completed_prefix(outcome: &MiningOutcome, full: &MiningResult) -> Result<(), String> {
    let got = &outcome.result.patterns;
    let term = &outcome.termination;
    if got.len() > full.patterns.len() {
        return Err(format!(
            "partial result has {} patterns, full only {}",
            got.len(),
            full.patterns.len()
        ));
    }
    crate::metamorphic::assert_same_sequence("prefix", &full.patterns[..got.len()], got, 1)?;
    if term.classes_finished != outcome.result.stats.classes {
        return Err(format!(
            "termination says {} classes finished, stats say {}",
            term.classes_finished, outcome.result.stats.classes
        ));
    }
    if term.is_complete() {
        if got.len() != full.patterns.len() {
            return Err(format!(
                "claims Completed but has {}/{} patterns",
                got.len(),
                full.patterns.len()
            ));
        }
        if term.classes_abandoned != 0 || !term.frontier.is_empty() {
            return Err(format!(
                "claims Completed but abandoned {} classes (frontier {:?})",
                term.classes_abandoned, term.frontier
            ));
        }
    } else if term.classes_abandoned == 0 {
        return Err(format!(
            "claims {} but abandoned no classes",
            term.reason
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::case;
    use crate::metamorphic::{assert_engines_identical, Engine, MAX_EDGES};

    #[test]
    fn clean_plans_reproduce_serial_output() {
        let c = case(11);
        let serial = Engine::Serial
            .mine(
                &TaxogramConfig::with_threshold(c.theta).max_edges(MAX_EDGES),
                &c.db,
                &c.taxonomy,
            )
            .unwrap();
        for &threads in &FAULT_THREADS {
            for &capacity in &FAULT_CAPACITIES {
                let plan = FaultPlan::shape(threads, capacity);
                let stolen = plan.run_stealing(&c).unwrap();
                assert_engines_identical(&serial, &stolen).unwrap();
                if threads >= 2 {
                    let piped = plan.run_pipelined(&c).unwrap();
                    assert_engines_identical(&serial, &piped).unwrap();
                }
            }
        }
    }

    #[test]
    fn injected_panics_surface_as_errors() {
        let c = case(13);
        let plan = FaultPlan::shape(2, 1).panic_at(1);
        assert!(matches!(
            plan.run_stealing(&c),
            Err(TaxogramError::WorkerPanicked { .. })
        ));
    }
}
