//! Deterministic fault and schedule plans for the parallel engines.
//!
//! The parallel miners' failure modes — a panicking sink, a worker dying
//! mid-task, a receiver abandoning the pipeline channel, pathological
//! steal schedules — are all timing-dependent in the wild. This module
//! pins them down: every plan is a plain value, every injected event
//! fires at a deterministic point (the Nth task, the Nth class, a seeded
//! coin per spawn), so a failing configuration replays exactly.
//!
//! Plans thread into the engines through their `#[doc(hidden)]` hooks:
//! [`SearchFaults`] into the work-stealing gSpan scheduler (used by both
//! `tsg_gspan::mine_parallel_with` and `taxogram_core::mine_stealing`),
//! [`PipelineFaults`] into the streaming pipeline's channel workers.

use crate::gen::Case;
use taxogram_core::{
    mine_pipelined_faulted, mine_stealing_faulted, MiningResult, PipelineFaults, PipelineOptions,
    SearchFaults, StealOptions, TaxogramConfig, TaxogramError,
};

/// The thread counts the acceptance matrix sweeps.
pub const FAULT_THREADS: [usize; 3] = [1, 2, 4];

/// The channel/deque capacities the acceptance matrix sweeps; capacity 1
/// maximizes contention (every spawn overflows, every send backpressures).
pub const FAULT_CAPACITIES: [usize; 3] = [1, 2, 4];

/// One deterministic parallel-run configuration: scheduler shape plus
/// injected faults.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    /// Worker thread count (0 ⇒ engine default).
    pub threads: usize,
    /// Deque capacity (stealing) / channel capacity (pipelined);
    /// 0 ⇒ engine default.
    pub capacity: usize,
    /// Faults for the work-stealing search.
    pub search: SearchFaults,
    /// Faults for the streaming pipeline.
    pub pipeline: PipelineFaults,
}

impl FaultPlan {
    /// A clean plan (no faults) with the given scheduler shape.
    pub fn shape(threads: usize, capacity: usize) -> Self {
        FaultPlan {
            threads,
            capacity,
            ..FaultPlan::default()
        }
    }

    /// Injects a panic into the `n`th executed search task (stealing
    /// engine) and the `n`th pattern class (pipelined engine).
    pub fn panic_at(mut self, n: usize) -> Self {
        self.search.panic_at_task = Some(n);
        self.pipeline.panic_at_class = Some(n);
        self
    }

    /// Applies a seeded forced-steal schedule to the search.
    pub fn steal_schedule(mut self, seed: u64) -> Self {
        self.search.steal_schedule_seed = Some(seed);
        self
    }

    /// Simulates pipeline receivers dropping after `n` processed items.
    pub fn drop_receiver_after(mut self, n: usize) -> Self {
        self.pipeline.drop_receiver_after = Some(n);
        self
    }

    /// Runs the fused work-stealing engine under this plan.
    pub fn run_stealing(&self, case: &Case) -> Result<MiningResult, TaxogramError> {
        mine_stealing_faulted(
            &self.config(case),
            &case.db,
            &case.taxonomy,
            StealOptions {
                threads: self.threads,
                deque_capacity: self.capacity,
                clamp_to_cores: false,
            },
            self.search,
        )
    }

    /// Runs the streaming pipelined engine under this plan. Note the
    /// engine needs `threads ≥ 2` to exercise the channel (at 1 it falls
    /// back to the serial miner and faults cannot fire).
    pub fn run_pipelined(&self, case: &Case) -> Result<MiningResult, TaxogramError> {
        mine_pipelined_faulted(
            &self.config(case),
            &case.db,
            &case.taxonomy,
            PipelineOptions {
                threads: self.threads,
                channel_capacity: self.capacity,
                clamp_to_cores: false,
            },
            self.pipeline,
        )
    }

    fn config(&self, case: &Case) -> TaxogramConfig {
        TaxogramConfig::with_threshold(case.theta).max_edges(crate::metamorphic::MAX_EDGES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::case;
    use crate::metamorphic::{assert_engines_identical, Engine, MAX_EDGES};

    #[test]
    fn clean_plans_reproduce_serial_output() {
        let c = case(11);
        let serial = Engine::Serial
            .mine(
                &TaxogramConfig::with_threshold(c.theta).max_edges(MAX_EDGES),
                &c.db,
                &c.taxonomy,
            )
            .unwrap();
        for &threads in &FAULT_THREADS {
            for &capacity in &FAULT_CAPACITIES {
                let plan = FaultPlan::shape(threads, capacity);
                let stolen = plan.run_stealing(&c).unwrap();
                assert_engines_identical(&serial, &stolen).unwrap();
                if threads >= 2 {
                    let piped = plan.run_pipelined(&c).unwrap();
                    assert_engines_identical(&serial, &piped).unwrap();
                }
            }
        }
    }

    #[test]
    fn injected_panics_surface_as_errors() {
        let c = case(13);
        let plan = FaultPlan::shape(2, 1).panic_at(1);
        assert!(matches!(
            plan.run_stealing(&c),
            Err(TaxogramError::WorkerPanicked { .. })
        ));
    }
}
