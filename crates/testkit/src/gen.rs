//! Seeded structure-aware generators for mining inputs.
//!
//! One canonical implementation of the random-input shapes the whole
//! workspace tests against: DAG taxonomies whose non-root concepts pick
//! one or two parents among lower-numbered concepts (so acyclicity holds
//! by construction), and small connected graphs built as a labeled chain
//! plus a few extra edges. These were previously copy-pasted across five
//! test files; every knob here matches those originals so deduplicating
//! onto this module does not change what gets generated.
//!
//! Two entry styles:
//!
//! * proptest strategies ([`arb_taxonomy`], [`arb_graph`], [`arb_db`],
//!   [`arb_input`]) for `proptest!` property tests;
//! * direct seeded generation ([`case`], [`cases`]) for harness code
//!   that wants a plain `u64 → Case` function — the metamorphic and
//!   fault drivers, which manage their own case loops.

use proptest::prelude::*;
use proptest::TestRng;
use tsg_graph::{EdgeLabel, GraphDatabase, LabeledGraph, NodeLabel};
use tsg_taxonomy::{Taxonomy, TaxonomyBuilder};

/// The support thresholds the agreement suites sweep. Chosen to hit
/// "everything", "most", and "some" frequency regimes on 2–5 graph
/// databases.
pub const THETAS: [f64; 3] = [1.0, 0.6, 0.4];

/// A random DAG taxonomy over `2..=max_concepts` concepts: concept 0 is
/// always a root, and each later concept is-a one or two distinct
/// earlier concepts.
pub fn arb_taxonomy(max_concepts: usize) -> impl Strategy<Value = Taxonomy> {
    (2..=max_concepts)
        .prop_flat_map(|n| {
            let parent_choices: Vec<_> = (1..n)
                .map(|i| prop::collection::vec(0..i, 1..=2.min(i)))
                .collect();
            (Just(n), parent_choices)
        })
        .prop_map(|(n, parents)| {
            let mut b = TaxonomyBuilder::with_concepts(n);
            for (i, ps) in parents.into_iter().enumerate() {
                let child = NodeLabel((i + 1) as u32);
                let mut seen = vec![];
                for p in ps {
                    if !seen.contains(&p) {
                        seen.push(p);
                        b.is_a(child, NodeLabel(p as u32)).unwrap();
                    }
                }
            }
            b.build().expect("acyclic by construction")
        })
}

/// A random multi-root, cross-linked DAG taxonomy over
/// `2..=max_concepts` concepts: each concept after 0 picks **zero** to
/// three distinct earlier parents, so parentless concepts become extra
/// roots and two-plus-parent concepts exercise the cross-link
/// (non-spanning-tree) ancestry paths of the interval reachability
/// labeling. Acyclic by construction (parents are always lower-numbered).
pub fn arb_dag_taxonomy(max_concepts: usize) -> impl Strategy<Value = Taxonomy> {
    (2..=max_concepts)
        .prop_flat_map(|n| {
            let parent_choices: Vec<_> = (1..n)
                .map(|i| prop::collection::vec(0..i, 0..=3.min(i)))
                .collect();
            (Just(n), parent_choices)
        })
        .prop_map(|(n, parents)| {
            let mut b = TaxonomyBuilder::with_concepts(n);
            for (i, ps) in parents.into_iter().enumerate() {
                let child = NodeLabel((i + 1) as u32);
                let mut seen = vec![];
                for p in ps {
                    if !seen.contains(&p) {
                        seen.push(p);
                        b.is_a(child, NodeLabel(p as u32)).unwrap();
                    }
                }
            }
            b.build().expect("acyclic by construction")
        })
}

/// A random small connected graph over labels `0..concepts`: a chain of
/// `2..=max_nodes` vertices (edge labels 0–1) plus up to two extra
/// edges.
pub fn arb_graph(concepts: usize, max_nodes: usize) -> impl Strategy<Value = LabeledGraph> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            let labels = prop::collection::vec(0..concepts, n);
            let chain = prop::collection::vec(0..2u32, n - 1);
            let extras = prop::collection::vec(((0..n), (0..n), 0..2u32), 0..=2);
            (labels, chain, extras)
        })
        .prop_map(|(labels, chain, extras)| {
            let mut g = LabeledGraph::with_nodes(labels.iter().map(|&l| NodeLabel(l as u32)));
            for (i, &el) in chain.iter().enumerate() {
                g.add_edge(i, i + 1, EdgeLabel(el)).unwrap();
            }
            for (u, v, el) in extras {
                if u != v {
                    // Parallel edges are rejected by the graph; skipping
                    // the occasional duplicate is fine for a generator.
                    let _ = g.add_edge(u, v, EdgeLabel(el));
                }
            }
            g
        })
}

/// A database of `min_graphs..=max_graphs` graphs from
/// [`arb_graph`]`(concepts, max_nodes)`.
pub fn arb_db(
    concepts: usize,
    min_graphs: usize,
    max_graphs: usize,
    max_nodes: usize,
) -> impl Strategy<Value = GraphDatabase> {
    prop::collection::vec(arb_graph(concepts, max_nodes), min_graphs..=max_graphs)
        .prop_map(GraphDatabase::from_graphs)
}

/// A coupled `(Taxonomy, GraphDatabase)` pair: the database's labels are
/// drawn from the taxonomy's concepts, so relabeling never fails.
pub fn arb_input_sized(
    max_concepts: usize,
    max_graphs: usize,
    max_nodes: usize,
) -> impl Strategy<Value = (Taxonomy, GraphDatabase)> {
    arb_taxonomy(max_concepts).prop_flat_map(move |t| {
        let n = t.concept_count();
        (Just(t), arb_db(n, 2, max_graphs, max_nodes))
    })
}

/// The default coupled input: up to 5 concepts, 2–4 graphs of up to 4
/// vertices — the shape the cross-validation suites have always used
/// (small enough for the brute-force reference oracle).
pub fn arb_input() -> impl Strategy<Value = (Taxonomy, GraphDatabase)> {
    arb_input_sized(5, 4, 4)
}

/// One of [`THETAS`].
pub fn arb_theta() -> impl Strategy<Value = f64> {
    prop::sample::select(THETAS.to_vec())
}

/// A complete seeded mining input.
#[derive(Clone, Debug)]
pub struct Case {
    /// The is-a taxonomy the database's labels live in.
    pub taxonomy: Taxonomy,
    /// The graph database (labels ⊆ taxonomy concepts).
    pub db: GraphDatabase,
    /// Fractional support threshold.
    pub theta: f64,
    /// The seed this case was generated from, for failure messages.
    pub seed: u64,
}

/// Generates the case for `seed` — the same triple every time, on every
/// host. Structure-aware: the taxonomy and database are coupled through
/// [`arb_input`], θ through [`arb_theta`].
pub fn case(seed: u64) -> Case {
    let mut rng = TestRng::new(seed);
    let (taxonomy, db) = arb_input().generate(&mut rng);
    let theta = arb_theta().generate(&mut rng);
    Case {
        taxonomy,
        db,
        theta,
        seed,
    }
}

/// `n` cases derived from a base seed: `case(base ^ mix(i))` for
/// `i = 0..n`, with a splitmix-style index mix so neighboring indices
/// land in unrelated parts of the seed space.
pub fn cases(base: u64, n: usize) -> impl Iterator<Item = Case> {
    (0..n).map(move |i| case(base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Case count for harness-driven loops: honors `PROPTEST_CASES` like the
/// proptest runner, defaulting to `dflt`.
pub fn case_count(dflt: usize) -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(dflt)
}

/// A sorted, deduplicated member list over `0..universe` shaped for
/// set-container testing: uniform scatter plus a few contiguous runs
/// whose lengths deliberately straddle the adaptive containers'
/// array↔bitmap promotion boundary (4096 members per 2^16 chunk) and the
/// chunk edges themselves. Used by the `AdaptiveBitSet` equivalence
/// suite; plain `Vec<usize>` so this crate needs no bitset dependency.
pub fn arb_members(universe: usize) -> impl Strategy<Value = Vec<usize>> {
    let singles = prop::collection::vec(0..universe, 0..192);
    // Run lengths up to 5000 cross the 4096 promotion threshold inside
    // one chunk; starts near a multiple of 65536 make runs span chunks.
    let runs = prop::collection::vec((0..universe, 1..5000usize), 0..4);
    let near_chunk_edges = prop::collection::vec(0..8usize, 0..6);
    (singles, runs, near_chunk_edges).prop_map(move |(mut m, runs, edges)| {
        for (start, len) in runs {
            m.extend(start..(start + len).min(universe));
        }
        for e in edges {
            let v = (e + 1) * (1 << 16);
            // Both sides of a chunk boundary, clamped to the universe.
            if v < universe {
                m.push(v);
            }
            if v - 1 < universe {
                m.push(v - 1);
            }
        }
        m.sort_unstable();
        m.dedup();
        m
    })
}

/// A mutation script for set-container testing: `(insert, value)` ops
/// over `0..universe`, insert-biased so sets actually grow through the
/// promotion boundary before removals drag them back down.
pub fn arb_set_ops(universe: usize, max_ops: usize) -> impl Strategy<Value = Vec<(bool, usize)>> {
    prop::collection::vec((0..4usize, 0..universe), 0..max_ops)
        .prop_map(|ops| ops.into_iter().map(|(k, v)| (k != 0, v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_and_coupled() {
        let a = case(42);
        let b = case(42);
        assert_eq!(a.db.len(), b.db.len());
        assert_eq!(a.taxonomy.edge_list(), b.taxonomy.edge_list());
        assert_eq!(a.theta, b.theta);
        // Coupling: every database label is a taxonomy concept.
        for (_, g) in a.db.iter() {
            for &l in g.labels() {
                assert!(a.taxonomy.contains(l), "label {l:?} outside taxonomy");
            }
        }
    }

    #[test]
    fn seeded_cases_vary() {
        let distinct: std::collections::BTreeSet<_> = cases(7, 32)
            .map(|c| {
                (
                    c.taxonomy.edge_list(),
                    c.db.len(),
                    c.db.graphs().iter().map(|g| g.labels().to_vec()).collect::<Vec<_>>(),
                )
            })
            .collect();
        assert!(distinct.len() > 16, "only {} distinct cases of 32", distinct.len());
    }

    #[test]
    fn graphs_are_connected_chains_with_extras() {
        for c in cases(3, 16) {
            for (_, g) in c.db.iter() {
                assert!(g.is_connected());
                assert!(g.node_count() >= 2);
                assert!(g.edge_count() >= g.node_count() - 1);
            }
        }
    }
}
