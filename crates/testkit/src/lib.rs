//! Shared test harness for the Taxogram workspace.
//!
//! Before this crate existed, five test files carried near-identical
//! copies of the same proptest strategies for random taxonomies and
//! graph databases, and every new correctness idea (a metamorphic
//! relation, a fault schedule) had to be re-plumbed per crate. This
//! crate centralizes the three layers every suite builds on:
//!
//! * [`gen`] — seeded, structure-aware generators for `(Taxonomy,
//!   GraphDatabase, θ)` triples, usable both as proptest strategies and
//!   as a plain deterministic `seed → Case` function;
//! * [`metamorphic`] — the relation engine: properties that must hold
//!   across *transformations* of the input (taxonomy flattening, graph
//!   duplication, label permutation, …), checked uniformly against the
//!   serial, barrier, pipelined, and work-stealing engines;
//! * [`fault`] — deterministic fault/schedule plans (injected worker
//!   panics, forced-steal schedules, channel-capacity sweeps, receiver
//!   drops, governance cancel/budget triggers) threaded into the
//!   parallel engines through their `#[doc(hidden)]` hooks;
//! * [`corrupt`] — seeded mutation operators over text serializations,
//!   for the parser-hardening suites (valid input, corrupted);
//! * [`netfault`] — protocol-level wire fault plans (slow loris, torn
//!   and truncated writes, cancel storms) for hardening the serve
//!   daemon's framing and reclamation paths.
//!
//! Everything is deterministic from an explicit `u64` seed — no ambient
//! randomness — so any failure reproduces from its printed seed alone.

pub mod corrupt;
pub mod fault;
pub mod gen;
pub mod metamorphic;
pub mod netfault;
pub mod schedules;

pub use gen::{case, cases, Case};
pub use metamorphic::{Engine, ENGINES};
