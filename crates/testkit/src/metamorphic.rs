//! Metamorphic relations for taxonomy-superimposed mining.
//!
//! A metamorphic relation states how the *output* must respond to a
//! known transformation of the *input*, giving an oracle where no
//! ground truth is available. The relations here are theorems of the
//! problem definition (paper §2), so any violation is a bug:
//!
//! 1. **Taxonomy flattening** — with no is-a edges, generalization is
//!    vacuous: relabeling is the identity and every pattern class has
//!    exactly one member (itself), so the output must be *byte-identical*
//!    to plain gSpan on the same database.
//! 2. **Engine agreement** — serial, barrier, pipelined, and
//!    work-stealing engines must produce byte-identical results.
//! 3. **θ-monotonicity** — raising the threshold can only shrink the
//!    pattern set: `patterns(θ₂) ⊆ patterns(θ₁)` for `θ₁ ≤ θ₂`. This
//!    survives the minimality filter because an over-generalization
//!    witness has *equal* support, so witness and victim cross any
//!    threshold together.
//! 4. **Duplication invariance** — doubling the database doubles every
//!    support count and changes nothing else: `2s ≥ ⌈θ·2n⌉ ⇔ s ≥ ⌈θn⌉`.
//! 5. **Isolated-vertex invariance** — an isolated vertex joins no edge,
//!    so it can appear in no embedding of any (edge-based) pattern.
//! 6. **Label-permutation equivariance** — consistently renaming concept
//!    ids in the taxonomy *and* the database renames them in the output
//!    and does nothing else (the result set is isomorphic).
//! 7. **Specialization anti-monotonicity** — specializing any pattern
//!    label to a taxonomy child can only lose occurrences; reported
//!    supports must agree with direct generalized-isomorphism recounts.
//! 8. **Reference agreement** — the full output matches the brute-force
//!    reference miner ([`taxogram_core::reference`]), in particular
//!    containing no over-generalized pattern.
//! 9. **Shard-count invariance** — the sharded out-of-core SON miner
//!    ([`taxogram_core::shard`]) is byte-identical to the serial engine
//!    at *every* shard count and thread count: the candidate superset is
//!    complete (SON pigeonhole), supports are recounted exactly, and
//!    Pass 2b re-enumerates each class in serial order on global data.
//!
//! All relations are driven by [`run_suite`]; individual relations are
//! public for targeted tests.

use crate::gen::{Case, THETAS};
use taxogram_core::reference::{compare_with_reference, reference_mine};
use taxogram_core::{
    mine_parallel, mine_pipelined_with, mine_sharded, mine_stealing_with, MiningResult, Pattern,
    PipelineOptions, ShardOptions, StealOptions, Taxogram, TaxogramConfig, TaxogramError,
};
use tsg_graph::{GraphDatabase, LabeledGraph, NodeLabel};
use tsg_iso::{is_isomorphic, support_count, GeneralizedMatcher};
use tsg_taxonomy::{Taxonomy, TaxonomyBuilder};

/// Edge cap for all metamorphic mining runs: keeps the brute-force
/// reference oracle (exponential in pattern size) tractable.
pub const MAX_EDGES: usize = 3;

/// Which mining engine executes a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// `Taxogram::mine`, the serial three-step pipeline.
    Serial,
    /// `mine_parallel`: collect-all barrier, then parallel Step 3.
    Barrier,
    /// `mine_pipelined_with`: streaming channel, tiny capacity, forced
    /// past the core clamp so the channel machinery always runs.
    Pipelined,
    /// `mine_stealing_with`: fused work-stealing search, deque capacity
    /// 2 so steals actually happen on small inputs.
    Stealing,
}

/// Every engine, serial first (the comparison baseline).
pub const ENGINES: [Engine; 4] = [
    Engine::Serial,
    Engine::Barrier,
    Engine::Pipelined,
    Engine::Stealing,
];

impl Engine {
    /// Short name for failure messages.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Serial => "serial",
            Engine::Barrier => "barrier",
            Engine::Pipelined => "pipelined",
            Engine::Stealing => "stealing",
        }
    }

    /// Runs this engine on the given input.
    pub fn mine(
        &self,
        config: &TaxogramConfig,
        db: &GraphDatabase,
        taxonomy: &Taxonomy,
    ) -> Result<MiningResult, TaxogramError> {
        match self {
            Engine::Serial => Taxogram::new(*config).mine(db, taxonomy),
            Engine::Barrier => mine_parallel(config, db, taxonomy, 3),
            Engine::Pipelined => mine_pipelined_with(
                config,
                db,
                taxonomy,
                PipelineOptions {
                    threads: 3,
                    channel_capacity: 2,
                    clamp_to_cores: false,
                },
            ),
            Engine::Stealing => mine_stealing_with(
                config,
                db,
                taxonomy,
                StealOptions {
                    threads: 3,
                    deque_capacity: 2,
                    clamp_to_cores: false,
                },
            ),
        }
    }
}

fn config(theta: f64) -> TaxogramConfig {
    TaxogramConfig::with_threshold(theta).max_edges(MAX_EDGES)
}

fn edge_tuples(g: &LabeledGraph) -> Vec<(usize, usize, u32)> {
    g.edges().iter().map(|e| (e.u, e.v, e.label.0)).collect()
}

/// Order-sensitive byte comparison of two pattern sequences, with
/// per-pattern support scaling (`scale` = 2 for the duplication
/// relation, 1 otherwise).
pub(crate) fn assert_same_sequence(
    what: &str,
    base: &[Pattern],
    other: &[Pattern],
    scale: usize,
) -> Result<(), String> {
    if base.len() != other.len() {
        return Err(format!(
            "{what}: {} patterns vs {}",
            base.len(),
            other.len()
        ));
    }
    for (i, (a, b)) in base.iter().zip(other).enumerate() {
        if a.graph.labels() != b.graph.labels() || edge_tuples(&a.graph) != edge_tuples(&b.graph) {
            return Err(format!(
                "{what}: pattern {i} differs: {:?} vs {:?}",
                a.graph.labels(),
                b.graph.labels()
            ));
        }
        if a.support_count * scale != b.support_count {
            return Err(format!(
                "{what}: pattern {i} support {}×{scale} ≠ {}",
                a.support_count, b.support_count
            ));
        }
    }
    Ok(())
}

/// Byte-identity of two full mining results: same patterns in the same
/// order with the same supports, and the same class count. The
/// equivalence check every engine/fault comparison bottoms out in.
pub fn assert_engines_identical(a: &MiningResult, b: &MiningResult) -> Result<(), String> {
    assert_same_sequence("results", &a.patterns, &b.patterns, 1)?;
    if a.stats.classes != b.stats.classes {
        return Err(format!(
            "results: {} classes vs {}",
            a.stats.classes, b.stats.classes
        ));
    }
    Ok(())
}

/// Checks `sub ⊆ sup` as an (isomorphism, support)-matched multiset.
fn assert_iso_subset(what: &str, sub: &[Pattern], sup: &[Pattern]) -> Result<(), String> {
    let mut used = vec![false; sup.len()];
    for p in sub {
        match sup.iter().enumerate().find(|(i, q)| {
            !used[*i] && q.support_count == p.support_count && is_isomorphic(&p.graph, &q.graph)
        }) {
            Some((i, _)) => used[i] = true,
            None => {
                return Err(format!(
                    "{what}: pattern {:?} (sup {}) has no counterpart",
                    p.graph.labels(),
                    p.support_count
                ))
            }
        }
    }
    Ok(())
}

/// Relation 1: a taxonomy with no is-a edges reduces Taxogram to plain
/// gSpan, byte for byte (same patterns, same order, same supports).
pub fn flattening_matches_gspan(case: &Case, engine: Engine) -> Result<(), String> {
    let flat = TaxonomyBuilder::with_concepts(case.taxonomy.concept_count())
        .build()
        .expect("edgeless taxonomy is trivially acyclic");
    let mined = engine
        .mine(&config(case.theta), &case.db, &flat)
        .map_err(|e| format!("flat {}: {e}", engine.name()))?;
    let plain = tsg_gspan::mine_frequent(
        &case.db,
        case.db.min_support_count(case.theta),
        Some(MAX_EDGES),
    );
    if mined.patterns.len() != plain.len() {
        return Err(format!(
            "flatten[{}]: taxogram found {}, gspan found {}",
            engine.name(),
            mined.patterns.len(),
            plain.len()
        ));
    }
    for (i, (a, b)) in mined.patterns.iter().zip(&plain).enumerate() {
        if a.graph.labels() != b.graph.labels()
            || edge_tuples(&a.graph) != edge_tuples(&b.graph)
            || a.support_count != b.support
        {
            return Err(format!(
                "flatten[{}]: pattern {i}: {:?}/sup {} vs gspan {:?}/sup {}",
                engine.name(),
                a.graph.labels(),
                a.support_count,
                b.graph.labels(),
                b.support
            ));
        }
    }
    Ok(())
}

/// Relation 2: every engine reproduces the serial result byte for byte.
pub fn engines_agree(case: &Case) -> Result<(), String> {
    let cfg = config(case.theta);
    let serial = Engine::Serial
        .mine(&cfg, &case.db, &case.taxonomy)
        .map_err(|e| format!("serial: {e}"))?;
    for engine in &ENGINES[1..] {
        let other = engine
            .mine(&cfg, &case.db, &case.taxonomy)
            .map_err(|e| format!("{}: {e}", engine.name()))?;
        assert_same_sequence(
            &format!("engines[{}]", engine.name()),
            &serial.patterns,
            &other.patterns,
            1,
        )?;
        if serial.stats.classes != other.stats.classes {
            return Err(format!(
                "engines[{}]: {} classes vs serial {}",
                engine.name(),
                other.stats.classes,
                serial.stats.classes
            ));
        }
    }
    Ok(())
}

/// Relation 3: raising θ only shrinks the pattern set.
pub fn theta_monotonicity(case: &Case, engine: Engine) -> Result<(), String> {
    let mut thetas = THETAS;
    thetas.sort_by(|a, b| a.partial_cmp(b).expect("thetas are finite"));
    let mut results = Vec::new();
    for &theta in &thetas {
        results.push(
            engine
                .mine(&config(theta), &case.db, &case.taxonomy)
                .map_err(|e| format!("θ={theta} {}: {e}", engine.name()))?,
        );
    }
    for w in results.windows(2) {
        assert_iso_subset(
            &format!("θ-monotone[{}]", engine.name()),
            &w[1].patterns,
            &w[0].patterns,
        )?;
    }
    Ok(())
}

/// Relation 4: concatenating the database with itself doubles supports
/// and changes nothing else.
pub fn duplication_invariance(case: &Case, engine: Engine) -> Result<(), String> {
    let cfg = config(case.theta);
    let base = engine
        .mine(&cfg, &case.db, &case.taxonomy)
        .map_err(|e| format!("dup base {}: {e}", engine.name()))?;
    let mut graphs: Vec<LabeledGraph> = case.db.graphs().to_vec();
    graphs.extend(case.db.graphs().iter().cloned());
    let doubled = GraphDatabase::from_graphs(graphs);
    let dup = engine
        .mine(&cfg, &doubled, &case.taxonomy)
        .map_err(|e| format!("dup {}: {e}", engine.name()))?;
    assert_same_sequence(
        &format!("duplication[{}]", engine.name()),
        &base.patterns,
        &dup.patterns,
        2,
    )
}

/// Relation 5: an isolated vertex participates in no edge pattern, so
/// inserting one changes nothing.
pub fn isolated_vertex_invariance(case: &Case, engine: Engine) -> Result<(), String> {
    let cfg = config(case.theta);
    let base = engine
        .mine(&cfg, &case.db, &case.taxonomy)
        .map_err(|e| format!("iso-vertex base {}: {e}", engine.name()))?;
    let mut graphs: Vec<LabeledGraph> = case.db.graphs().to_vec();
    let root = case.taxonomy.roots()[0];
    graphs[0].add_node(root);
    let extended = GraphDatabase::from_graphs(graphs);
    let ext = engine
        .mine(&cfg, &extended, &case.taxonomy)
        .map_err(|e| format!("iso-vertex {}: {e}", engine.name()))?;
    assert_same_sequence(
        &format!("isolated-vertex[{}]", engine.name()),
        &base.patterns,
        &ext.patterns,
        1,
    )
}

/// Relation 6: renaming concept ids consistently in taxonomy and
/// database renames them in the output (results isomorphic under π).
pub fn label_permutation_equivariance(case: &Case, engine: Engine) -> Result<(), String> {
    let n = case.taxonomy.concept_count();
    let pi = |l: NodeLabel| NodeLabel((l.0 + 1) % n as u32);
    let mut b = TaxonomyBuilder::with_concepts(n);
    for (child, parent) in case.taxonomy.edge_list() {
        b.is_a(pi(child), pi(parent))
            .expect("permutation preserves validity");
    }
    let perm_taxonomy = b.build().expect("permutation preserves acyclicity");
    let perm_graphs: Vec<LabeledGraph> = case
        .db
        .graphs()
        .iter()
        .map(|g| {
            let mut pg = g.clone();
            for v in 0..g.node_count() {
                pg.set_label(v, pi(g.label(v)));
            }
            pg
        })
        .collect();
    let perm_db = GraphDatabase::from_graphs(perm_graphs);

    let cfg = config(case.theta);
    let base = engine
        .mine(&cfg, &case.db, &case.taxonomy)
        .map_err(|e| format!("perm base {}: {e}", engine.name()))?;
    let perm = engine
        .mine(&cfg, &perm_db, &perm_taxonomy)
        .map_err(|e| format!("perm {}: {e}", engine.name()))?;

    // Map the base result through π, then compare as multisets (the
    // output *order* tracks label ids, so it may legitimately change).
    let mapped: Vec<Pattern> = base
        .patterns
        .iter()
        .map(|p| {
            let mut g = p.graph.clone();
            for v in 0..g.node_count() {
                g.set_label(v, pi(p.graph.label(v)));
            }
            Pattern {
                graph: g,
                support_count: p.support_count,
                support: p.support,
            }
        })
        .collect();
    let what = format!("permutation[{}]", engine.name());
    if mapped.len() != perm.patterns.len() {
        return Err(format!(
            "{what}: {} patterns vs {}",
            mapped.len(),
            perm.patterns.len()
        ));
    }
    assert_iso_subset(&what, &mapped, &perm.patterns)
}

/// Relation 7: reported supports match direct generalized-isomorphism
/// recounts, and specializing any label to a child never gains support.
pub fn specialization_anti_monotone(case: &Case, engine: Engine) -> Result<(), String> {
    let result = engine
        .mine(&config(case.theta), &case.db, &case.taxonomy)
        .map_err(|e| format!("anti-monotone {}: {e}", engine.name()))?;
    let matcher = GeneralizedMatcher::new(&case.taxonomy);
    let what = format!("anti-monotone[{}]", engine.name());
    for p in &result.patterns {
        let recount = support_count(&p.graph, &case.db, &matcher);
        if recount != p.support_count {
            return Err(format!(
                "{what}: {:?} reports support {}, recount {}",
                p.graph.labels(),
                p.support_count,
                recount
            ));
        }
        for (v, &l) in p.graph.labels().iter().enumerate() {
            for &child in case.taxonomy.children(l) {
                let mut spec = p.graph.clone();
                spec.set_label(v, child);
                let s = support_count(&spec, &case.db, &matcher);
                if s > p.support_count {
                    return Err(format!(
                        "{what}: specializing vertex {v} of {:?} to {child:?} \
                         raised support {} → {s}",
                        p.graph.labels(),
                        p.support_count
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Relation 8: full agreement with the brute-force reference miner — in
/// particular, no over-generalized pattern survives. The reference set
/// can be shared across engines via `precomputed`.
pub fn matches_reference(
    case: &Case,
    engine: Engine,
    precomputed: Option<&[(LabeledGraph, usize)]>,
) -> Result<(), String> {
    let owned;
    let want = match precomputed {
        Some(w) => w,
        None => {
            owned = reference_mine(&case.db, &case.taxonomy, case.theta, MAX_EDGES);
            &owned
        }
    };
    let result = engine
        .mine(&config(case.theta), &case.db, &case.taxonomy)
        .map_err(|e| format!("reference {}: {e}", engine.name()))?;
    compare_with_reference(&result.patterns, want)
        .map_or(Ok(()), |msg| Err(format!("reference[{}]: {msg}", engine.name())))
}

/// Shard counts exercised by relation 9: the degenerate single shard,
/// small counts that split candidate discovery across partitions, and a
/// count larger than any generated database (forcing one-graph shards).
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Relation 9: the sharded out-of-core miner reproduces the serial
/// result byte for byte at every shard count, single- and multi-threaded,
/// and always reports a complete (ungoverned) termination.
pub fn shard_count_invariance(case: &Case) -> Result<(), String> {
    let cfg = config(case.theta);
    let serial = Engine::Serial
        .mine(&cfg, &case.db, &case.taxonomy)
        .map_err(|e| format!("serial: {e}"))?;
    for shards in SHARD_COUNTS {
        for threads in [1, 2] {
            let opts = ShardOptions {
                shards,
                threads,
                // Batch size 2 makes multi-batch Pass 2b runs common on
                // the small generated cases.
                class_batch: 2,
                ..ShardOptions::default()
            };
            let outcome = mine_sharded(&cfg, &case.db, &case.taxonomy, &opts)
                .map_err(|e| format!("sharded[P={shards},t={threads}]: {e}"))?;
            if !outcome.termination.is_complete() {
                return Err(format!(
                    "sharded[P={shards},t={threads}]: ungoverned run did not complete: {:?}",
                    outcome.termination
                ));
            }
            assert_engines_identical(&serial, &outcome.result)
                .map_err(|msg| format!("shard-invariance[P={shards},t={threads}]: {msg}"))?;
        }
    }
    Ok(())
}

/// Runs every relation for every engine in `engines` on one case,
/// computing the shared reference oracle once. Failure messages carry
/// the case seed for standalone reproduction.
pub fn run_suite(case: &Case, engines: &[Engine]) -> Result<(), String> {
    let tag = |msg: String| format!("seed {:#x} (θ={}): {msg}", case.seed, case.theta);
    engines_agree(case).map_err(&tag)?;
    shard_count_invariance(case).map_err(&tag)?;
    let reference = reference_mine(&case.db, &case.taxonomy, case.theta, MAX_EDGES);
    for &engine in engines {
        flattening_matches_gspan(case, engine).map_err(&tag)?;
        theta_monotonicity(case, engine).map_err(&tag)?;
        duplication_invariance(case, engine).map_err(&tag)?;
        isolated_vertex_invariance(case, engine).map_err(&tag)?;
        label_permutation_equivariance(case, engine).map_err(&tag)?;
        specialization_anti_monotone(case, engine).map_err(&tag)?;
        matches_reference(case, engine, Some(&reference)).map_err(&tag)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::case;

    #[test]
    fn suite_passes_on_a_handful_of_seeds() {
        // The full 256-case sweeps live in the consuming crates' test
        // suites; this is the smoke check that the harness itself works.
        for seed in [1u64, 2, 3] {
            let c = case(seed);
            run_suite(&c, &ENGINES).unwrap();
        }
    }

    #[test]
    fn relations_catch_a_seeded_violation() {
        // Sanity: a deliberately wrong "engine result" comparison fails.
        let c = case(5);
        let base = Engine::Serial
            .mine(
                &TaxogramConfig::with_threshold(c.theta).max_edges(MAX_EDGES),
                &c.db,
                &c.taxonomy,
            )
            .unwrap();
        if base.patterns.is_empty() {
            return; // nothing to corrupt on this seed
        }
        let mut wrong = base.patterns.clone();
        wrong[0].support_count += 1;
        assert!(assert_same_sequence("sanity", &base.patterns, &wrong, 1).is_err());
    }
}
