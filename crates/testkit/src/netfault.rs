//! Protocol-level fault injection for line-delimited TCP servers.
//!
//! Pure `std::net` — the module deliberately knows nothing about
//! `tsg-serve` (which dev-depends on this crate), only about
//! newline-framed byte streams, so the fault shapes are reusable against
//! any future wire endpoint. Each [`WirePlan`] describes *how* a frame
//! is delivered badly:
//!
//! * **slow loris** — the frame dribbles in tiny chunks with a delay
//!   between each, trying to pin a connection handler forever;
//! * **torn write** — the frame is split at an arbitrary byte boundary
//!   with a pause in between, probing the reassembly path;
//! * **truncated** — the connection drops after the first N bytes of a
//!   frame, mid-request;
//! * **connect storm** — many connections that send a request and
//!   vanish immediately, exercising cancel-token reclamation.
//!
//! A hardened server must answer every delivery with a typed response
//! or a clean close, *never* a hang — drivers here therefore put a
//! deadline on every read and report `None` rather than blocking.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// How to deliver one frame onto the wire.
#[derive(Clone, Debug)]
pub enum WirePlan {
    /// Write the whole frame at once (the well-behaved baseline).
    Clean,
    /// Write `chunk`-byte pieces with `delay` between them.
    Chunked {
        /// Bytes per write.
        chunk: usize,
        /// Pause between writes.
        delay: Duration,
    },
    /// Write `prefix` bytes, pause `delay`, then write the rest.
    Torn {
        /// Bytes before the tear.
        prefix: usize,
        /// Pause at the tear.
        delay: Duration,
    },
    /// Write only the first `keep` bytes, then hard-close the socket.
    Truncated {
        /// Bytes delivered before the disconnect.
        keep: usize,
    },
}

/// A test client speaking newline-framed text over TCP with explicit
/// deadlines everywhere (a fault-injection harness must itself never
/// hang).
pub struct WireClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl WireClient {
    /// Connects with a timeout; read/write timeouts default to the same
    /// value.
    ///
    /// # Errors
    /// Propagates the socket connect/configure failure.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout.min(Duration::from_millis(100))))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(WireClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// Delivers `frame` (newline appended if missing) per `plan`.
    /// Returns `false` if the plan closed the connection or the peer
    /// refused the bytes.
    pub fn send(&mut self, frame: &str, plan: &WirePlan) -> bool {
        let mut bytes = frame.as_bytes().to_vec();
        if bytes.last() != Some(&b'\n') {
            bytes.push(b'\n');
        }
        match plan {
            WirePlan::Clean => self.stream.write_all(&bytes).is_ok(),
            WirePlan::Chunked { chunk, delay } => {
                for piece in bytes.chunks((*chunk).max(1)) {
                    if self.stream.write_all(piece).is_err() {
                        return false;
                    }
                    std::thread::sleep(*delay);
                }
                true
            }
            WirePlan::Torn { prefix, delay } => {
                let cut = (*prefix).min(bytes.len());
                if self.stream.write_all(&bytes[..cut]).is_err() {
                    return false;
                }
                std::thread::sleep(*delay);
                self.stream.write_all(&bytes[cut..]).is_ok()
            }
            WirePlan::Truncated { keep } => {
                let cut = (*keep).min(bytes.len().saturating_sub(1));
                let _ = self.stream.write_all(&bytes[..cut]);
                let _ = self.stream.shutdown(Shutdown::Both);
                false
            }
        }
    }

    /// Writes raw bytes verbatim — no newline appended — so a test can
    /// leave an unterminated partial frame on the wire (the slow-loris
    /// shape) and then just wait.
    pub fn send_raw(&mut self, bytes: &[u8]) -> bool {
        self.stream.write_all(bytes).is_ok()
    }

    /// Reads one newline-terminated frame, or `None` if the deadline
    /// passes or the peer closes first. Never blocks past `deadline`.
    pub fn read_line(&mut self, deadline: Duration) -> Option<String> {
        let until = Instant::now() + deadline;
        let mut chunk = [0u8; 1024];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Some(String::from_utf8_lossy(&line).into_owned());
            }
            if Instant::now() >= until {
                return None;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return None,
            }
        }
    }

    /// Hard-closes the connection (both directions).
    pub fn hang_up(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// Report from a [`cancel_storm`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct StormReport {
    /// Connections that delivered their frame before vanishing.
    pub delivered: usize,
    /// Connections refused at connect time.
    pub refused: usize,
}

/// The cancel storm: `n` concurrent connections each deliver `frame`
/// and immediately hang up without reading the reply, leaving the
/// server with in-flight work whose clients are gone. A hardened server
/// must reclaim every worker (observable via its stats endpoint), not
/// leak them.
pub fn cancel_storm(addr: SocketAddr, frame: &str, n: usize, timeout: Duration) -> StormReport {
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let frame = frame.to_owned();
            std::thread::Builder::new()
                .name(format!("tsg-storm-{i}"))
                .spawn(move || match WireClient::connect(addr, timeout) {
                    Ok(mut c) => {
                        let delivered = c.send(&frame, &WirePlan::Clean);
                        // Give the frame a moment to clear local buffers,
                        // then vanish mid-request.
                        std::thread::sleep(Duration::from_millis(10));
                        c.hang_up();
                        delivered
                    }
                    Err(_) => false,
                })
                .expect("spawn storm client")
        })
        .collect();
    let mut report = StormReport::default();
    for h in handles {
        match h.join() {
            Ok(true) => report.delivered += 1,
            _ => report.refused += 1,
        }
    }
    report
}
