//! Named deterministic model-checker schedules for the fault matrix.
//!
//! The [`crate::fault`] plans trigger failures *deterministically in
//! value space* (panic at the Nth task, cancel after the Nth class) but
//! still leave thread *timing* to the OS. The model-checker stage
//! removes that last degree of freedom: each schedule below is a list
//! of scheduler decisions — ordinals into the sorted set of runnable
//! virtual threads at each visible operation — that
//! `tsg_check::model::Checker::replay` replays bit-for-bit, so the
//! trickiest fault-injection scenarios become exact interleavings
//! rather than races the harness hopes to hit (see
//! `crates/core/tests/model.rs`, which asserts identical event logs
//! across repeated replays of each schedule).
//!
//! The decisions past a schedule's end continue prev-first (keep the
//! running thread whenever it stays runnable), so a short prefix pins
//! the interesting part of the interleaving and the tail is still
//! deterministic.

/// The receiver drops mid-stream ([`crate::fault::FaultPlan`]'s
/// receiver-drop scenario): the producer keeps swapping into a full
/// channel, closes, then drains the leftovers itself.
pub const RECEIVER_DROP_MID_STREAM: &[usize] = &[0, 1, 0, 0, 1, 1, 0];

/// A worker panics at the Nth claimed task (`panic_at_task`): tickets
/// race off the shared cursor and the panic must surface through
/// `join` without stranding the surviving worker.
pub const PANIC_AT_NTH_STEAL: &[usize] = &[0, 0, 1, 1, 0, 1, 0, 1];

/// A budget trip races admission (`budget_classes` / `cancel_after`):
/// two workers hit a one-class governor and the pinned schedule makes
/// the same worker win every replay.
pub const BUDGET_TRIP_RACING_ADMISSION: &[usize] = &[1, 0, 1, 0, 0];
