//! Chemical substructure mining over an atom taxonomy (the paper's PTE
//! scenario, Figure 4.8).
//!
//! 416 carcinogenicity-screening molecules; atoms are leaves of the
//! Figure 4.1 taxonomy (element families over aromatic/non-aromatic atom
//! labels), so mined fragments can generalize "this exact atom" to "any
//! halogen" or "any carbon-family atom".
//!
//! ```text
//! cargo run --release --example chemical_compounds
//! ```

use taxogram::datagen::pte_like_dataset;
use taxogram::{Taxogram, TaxogramConfig};

fn main() {
    let pte = pte_like_dataset(2008);
    let stats = pte.database.stats();
    println!(
        "PTE-like dataset: {} molecules, avg {:.1} atoms / {:.1} bonds, {} atom labels\n",
        stats.graph_count, stats.avg_nodes, stats.avg_edges, stats.distinct_node_labels
    );

    for support in [0.6, 0.5, 0.3] {
        let start = std::time::Instant::now();
        let result = Taxogram::new(TaxogramConfig::with_threshold(support).max_edges(4))
            .mine(&pte.database, &pte.taxonomy)
            .expect("generated molecules are valid");
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        println!(
            "support {:.0}%: {} patterns in {:.0}ms",
            support * 100.0,
            result.patterns.len(),
            ms
        );
        // Show the five highest-support fragments as atom strings.
        for p in result.sorted_patterns().into_iter().take(5) {
            let atoms: Vec<&str> = p
                .graph
                .labels()
                .iter()
                .map(|&l| pte.names.name(l).unwrap_or("?"))
                .collect();
            let bonds: Vec<String> = p
                .graph
                .edges()
                .iter()
                .map(|e| {
                    let bond = ["-", "=", "#", "~"][e.label.index().min(3)];
                    format!("{}{}{}", atoms[e.u], bond, atoms[e.v])
                })
                .collect();
            println!(
                "    {:>5.1}%  {}",
                p.support * 100.0,
                bonds.join("  ")
            );
        }
        println!();
    }
    println!(
        "(Paper Figure 4.8: \"both the running time and the number of patterns \
         quickly increases even at relatively high support thresholds\" — most \
         compounds are built from C, H, and O, so shared fragments abound.)"
    );
}
