//! Directed taxonomy-superimposed mining.
//!
//! The paper's graph model is directed (§2 defines edges with direction,
//! and Figure 1.2's pathways carry reaction-order arrows), but its
//! evaluation used undirected data because the underlying gSpan
//! implementation lacked direction support. This implementation's gSpan
//! mines digraphs via arc-annotated DFS codes, so the Figure 1.2 scenario
//! runs as drawn:
//!
//! ```text
//! cargo run --example directed_pathways
//! ```

use taxogram::taxonomy::samples;
use taxogram::{Taxogram, TaxogramConfig};

fn main() {
    let (names, taxonomy, db) = samples::go_excerpt_directed();
    println!("Mining {} directed pathway graphs…\n", db.len());
    for (gid, g) in db.iter() {
        let arcs: Vec<String> = g
            .edges()
            .iter()
            .map(|e| {
                format!(
                    "{} → {}",
                    names.name(g.label(e.u)).unwrap_or("?"),
                    names.name(g.label(e.v)).unwrap_or("?")
                )
            })
            .collect();
        println!("  pathway {}: {}", gid + 1, arcs.join(", "));
    }

    let result = Taxogram::new(TaxogramConfig::with_threshold(1.0))
        .mine(&db, &taxonomy)
        .expect("fixture input is valid");
    println!(
        "\nPatterns conserved in every organism (support = 1.0, direction-aware):"
    );
    for p in result.sorted_patterns() {
        assert!(p.graph.is_directed());
        let arcs: Vec<String> = p
            .graph
            .edges()
            .iter()
            .map(|e| {
                format!(
                    "{} → {}",
                    names.name(p.graph.label(e.u)).unwrap_or("?"),
                    names.name(p.graph.label(e.v)).unwrap_or("?")
                )
            })
            .collect();
        println!("  {}", arcs.join(", "));
    }

    // Direction matters: the reversed arc pattern is NOT frequent.
    let transporter = names.get("transporter").unwrap();
    let helicase = names.get("helicase").unwrap();
    let mut forward = taxogram::graph::LabeledGraph::with_nodes_directed([transporter, helicase]);
    forward
        .add_edge(0, 1, taxogram::graph::EdgeLabel(0))
        .unwrap();
    let mut reversed = taxogram::graph::LabeledGraph::with_nodes_directed([helicase, transporter]);
    reversed
        .add_edge(0, 1, taxogram::graph::EdgeLabel(0))
        .unwrap();
    println!(
        "\nTransporter → Helicase found: {}",
        result.find_isomorphic(&forward).is_some()
    );
    println!(
        "Helicase → Transporter found: {} (direction is respected)",
        result.find_isomorphic(&reversed).is_some()
    );
}
