//! Comparative genomics: mine conserved pathway fragments across
//! organisms (the paper's Table 2 scenario).
//!
//! For each KEGG-like metabolic pathway, 30 prokaryotic "organisms" each
//! contribute an annotation graph; Taxogram finds the annotation
//! structures conserved in ≥ 20% of organisms, and the pattern count
//! ranks pathways by conservation ("the higher the number of patterns,
//! [the] more conserved the pathway is through the lineage").
//!
//! ```text
//! cargo run --release --example pathway_mining
//! ```

use taxogram::datagen::{go_like_taxonomy_scaled, pathway_corpus};
use taxogram::{Taxogram, TaxogramConfig};

fn main() {
    let taxonomy = go_like_taxonomy_scaled(800);
    let organisms = 30;
    let corpus = pathway_corpus(&taxonomy, organisms, 0xEDB7);
    println!(
        "Mining {} pathways x {} organisms at support 0.2 …\n",
        corpus.len(),
        organisms
    );

    let mut ranked: Vec<(&str, usize, f64)> = Vec::new();
    for ds in &corpus {
        let start = std::time::Instant::now();
        let result = Taxogram::new(TaxogramConfig::with_threshold(0.2).max_edges(8))
            .mine(&ds.database, &taxonomy)
            .expect("generated pathways are valid");
        let elapsed = start.elapsed().as_secs_f64() * 1000.0;
        ranked.push((ds.spec.name, result.patterns.len(), elapsed));
    }
    ranked.sort_by_key(|r| std::cmp::Reverse(r.1));

    println!("{:<48} {:>9} {:>10}", "Pathway", "patterns", "time");
    println!("{}", "-".repeat(70));
    for (name, patterns, ms) in &ranked {
        println!("{name:<48} {patterns:>9} {ms:>8.1}ms");
    }

    let (most, _, _) = ranked[0];
    let (least, _, _) = ranked[ranked.len() - 1];
    println!("\nMost conserved pathway:  {most}");
    println!("Least conserved pathway: {least}");
    println!(
        "\n(The paper's corresponding observation: \"Nitrogen metabolism and \
         Biosynthesis of Steroids are the top most conserved pathways for \
         bacterial organisms.\")"
    );
}
