//! A non-biology scenario: co-purchase graphs over a product-category
//! taxonomy.
//!
//! Taxonomy-based mining predates graphs (generalized association rules,
//! Srikant & Agrawal, VLDB'95 — the paper's §5); superimposing the
//! category tree on co-purchase *graphs* finds structural patterns like
//! "an audio product bridging two accessory purchases" that no exact-label
//! miner can see. This example also demonstrates building a taxonomy and
//! database by hand and round-tripping the database through the text
//! format.
//!
//! ```text
//! cargo run --example product_categories
//! ```

use taxogram::graph::{io, EdgeLabel, GraphDatabase, LabelTable, LabeledGraph, NodeLabel};
use taxogram::taxonomy::TaxonomyBuilder;
use taxogram::{Taxogram, TaxogramConfig};

fn main() {
    // Build the category taxonomy.
    let mut names = LabelTable::new();
    let mut b = TaxonomyBuilder::new();
    let concept = |names: &mut LabelTable, b: &mut TaxonomyBuilder, n: &str| {
        let l = names.intern(n);
        let c = b.add_concept();
        assert_eq!(l, c);
        l
    };
    let electronics = concept(&mut names, &mut b, "electronics");
    let audio = concept(&mut names, &mut b, "audio");
    let headphones = concept(&mut names, &mut b, "headphones");
    let speakers = concept(&mut names, &mut b, "speakers");
    let computers = concept(&mut names, &mut b, "computers");
    let laptop = concept(&mut names, &mut b, "laptop");
    let tablet = concept(&mut names, &mut b, "tablet");
    let accessories = concept(&mut names, &mut b, "accessories");
    let cable = concept(&mut names, &mut b, "cable");
    let case_ = concept(&mut names, &mut b, "case");
    for (c, p) in [
        (audio, electronics),
        (computers, electronics),
        (accessories, electronics),
        (headphones, audio),
        (speakers, audio),
        (laptop, computers),
        (tablet, computers),
        (cable, accessories),
        (case_, accessories),
    ] {
        b.is_a(c, p).unwrap();
    }
    let taxonomy = b.build().unwrap();

    // Co-purchase graphs: nodes are items (labeled by category), edges are
    // "bought together in one session".
    let together = EdgeLabel(0);
    let session = |items: &[NodeLabel], links: &[(usize, usize)]| {
        let mut g = LabeledGraph::with_nodes(items.iter().copied());
        for &(u, v) in links {
            g.add_edge(u, v, together).unwrap();
        }
        g
    };
    let db = GraphDatabase::from_graphs(vec![
        session(&[laptop, cable, headphones], &[(0, 1), (0, 2)]),
        session(&[tablet, case_, speakers], &[(0, 1), (0, 2)]),
        session(&[laptop, case_, headphones], &[(0, 1), (0, 2)]),
        session(&[tablet, cable], &[(0, 1)]),
    ]);

    // Round-trip through the text format, as a persistence demo.
    let text = io::write_database(&db);
    let db = io::read_database(&text).expect("round-trip");
    println!("Mining {} co-purchase sessions…\n", db.len());

    let result = Taxogram::new(TaxogramConfig::with_threshold(0.75))
        .mine(&db, &taxonomy)
        .unwrap();
    println!("Patterns at support ≥ 0.75 (minimal, complete):");
    for p in result.sorted_patterns() {
        let labels: Vec<&str> = p
            .graph
            .labels()
            .iter()
            .map(|&l| names.name(l).unwrap_or("?"))
            .collect();
        println!(
            "  {:?} ({} edges) — support {:.2}",
            labels,
            p.graph.edge_count(),
            p.support
        );
    }
    // The star "computer — accessory + computer — audio" is implicit: no
    // single concrete triple repeats across sessions, but the generalized
    // one covers sessions 1–3.
    let star = {
        let mut g = LabeledGraph::with_nodes([computers, accessories, audio]);
        g.add_edge(0, 1, together).unwrap();
        g.add_edge(0, 2, together).unwrap();
        g
    };
    match result.find_isomorphic(&star) {
        Some(p) => println!(
            "\nFound the implicit star computers—(accessories, audio) at support {:.2}.",
            p.support
        ),
        None => println!(
            "\nThe computers—(accessories, audio) star was over-generalized by a \
             more specific equal-support pattern — inspect the list above."
        ),
    }
}
