//! Quickstart: mine the paper's running example.
//!
//! Two "pathway annotation" graphs (Figure 1.2) share no explicit label,
//! yet under the Gene Ontology excerpt of Figure 1.1 they share implicit
//! structure — Taxogram finds it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use taxogram::taxonomy::samples;
use taxogram::{Taxogram, TaxogramConfig};

fn main() {
    // The Figure 1.1 GO excerpt + Figure 1.2 database, with label names.
    let (names, taxonomy, db) = samples::go_excerpt();

    println!("Database: {} pathway annotation graphs", db.len());
    for (gid, g) in db.iter() {
        let labels: Vec<&str> = g
            .labels()
            .iter()
            .map(|&l| names.name(l).unwrap_or("?"))
            .collect();
        println!("  pathway {}: {} nodes {:?}", gid + 1, g.node_count(), labels);
    }

    // Plain gSpan finds nothing at support 1.0 — no explicit overlap.
    let exact = taxogram::gspan::mine_frequent(&db, db.len(), None);
    println!("\nTraditional mining (exact labels, support = 1.0): {} patterns", exact.len());

    // Taxogram finds the implicit patterns of Figure 1.3.
    let result = Taxogram::new(TaxogramConfig::with_threshold(1.0))
        .mine(&db, &taxonomy)
        .expect("fixture input is valid");
    println!(
        "Taxonomy-superimposed mining: {} patterns (support = 1.0, minimal & complete)\n",
        result.patterns.len()
    );
    for p in result.sorted_patterns() {
        let labels: Vec<&str> = p
            .graph
            .labels()
            .iter()
            .map(|&l| names.name(l).unwrap_or("?"))
            .collect();
        println!(
            "  pattern {:?} ({} edges), support {:.2}",
            labels,
            p.graph.edge_count(),
            p.support
        );
    }

    println!(
        "\nStats: {} pattern classes, {} occurrence-index updates, {} bitset intersections",
        result.stats.classes,
        result.stats.oi_updates,
        result.stats.enumeration.intersections
    );
}
