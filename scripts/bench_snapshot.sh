#!/usr/bin/env sh
# Record a dated performance snapshot.
#
# Runs the microbench suite's kernel timings plus the end-to-end
# D1000/θ=0.2 engine comparison — including the `son_scaling` stanza,
# which proves the sharded out-of-core miner on a database 10× larger
# than its resident-set cap — and writes BENCH_<YYYYMMDD>.json in the
# repo root. Pass --threads / --scale through to the snapshot binary:
#
#   scripts/bench_snapshot.sh --threads 8 --scale medium
set -eu

cd "$(dirname "$0")/.."
out="BENCH_$(date +%Y%m%d).json"
# Stage through a temp file so a failed run can't truncate an existing
# snapshot (plain `> "$out"` clobbers before the binary even starts).
tmp="$out.tmp"
trap 'rm -f "$tmp"' EXIT
cargo run --release -q -p tsg-bench --bin bench_snapshot -- "$@" > "$tmp"
mv "$tmp" "$out"
echo "wrote $out" >&2
cat "$out"
