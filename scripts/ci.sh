#!/usr/bin/env bash
# Full local CI gate: release build, every workspace test, clippy with
# warnings promoted to errors, then the deep deterministic stages — a
# pinned-seed high-case proptest sweep and the parallel-engine
# fault-injection matrix. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

# Workspace-invariant lint first: it compiles in a blink (std-only, no
# deps) and fails fast on unannotated facade/ordering/panic/index/
# fault-hook violations and stale §12 contract rows (DESIGN.md §17).
echo "== tsg-lint (workspace invariants) =="
cargo run -q -p tsg-lint

# Negative smoke: prove the gate actually gates. Seed a throwaway
# mini-workspace containing one deliberate violation and assert the
# lint exits nonzero naming the expected rule id in its JSON output.
# (Cleaned up eagerly below — the spill stage later installs its own
# EXIT trap, which would replace one set here.)
lint_smoke_dir="$(mktemp -d)"
mkdir -p "$lint_smoke_dir/crates/demo/src"
printf '## 12. Atomics\n\n| ID | Site | Ordering | Contract |\n|--|--|--|--|\n| ORD-01 | probe | Relaxed | smoke row |\n' \
    > "$lint_smoke_dir/DESIGN.md"
cat > "$lint_smoke_dir/crates/demo/src/lib.rs" <<'RS'
pub fn f(x: Option<u32>) -> u32 { x.unwrap() }
pub fn g(a: &AtomicUsize) { a.fetch_add(1, Ordering::Relaxed); } // tsg-lint: ordering(ORD-01)
RS
lint_smoke_status=0
lint_smoke_out="$(cargo run -q -p tsg-lint -- --root "$lint_smoke_dir" --format json)" \
    || lint_smoke_status=$?
if [ "$lint_smoke_status" -ne 1 ]; then
    echo "!! FAIL: tsg-lint negative smoke expected exit 1, got $lint_smoke_status" >&2
    exit 1
fi
printf '%s\n' "$lint_smoke_out" | grep -q '"rule": "panic"' || {
    echo "!! FAIL: tsg-lint negative smoke did not report the seeded panic violation" >&2
    exit 1
}
rm -rf "$lint_smoke_dir"

cargo build --release
# Tier-1 first (the root package's fast suites), then the full workspace.
cargo test -q
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings

# Deep property stage: 256 cases per property (the acceptance floor for
# the metamorphic relations), pinned to one run seed so any failure here
# replays bit-for-bit on any host. The proptest shim mixes
# PROPTEST_RNG_SEED into every property's stream; the tsg-testkit harness
# loops use their own fixed base seeds and honor PROPTEST_CASES.
echo "== deep proptest sweep (PROPTEST_CASES=256, pinned seed) =="
PROPTEST_CASES=256 PROPTEST_RNG_SEED=0x7a78c0ffee cargo test --workspace -q

# Reachability-equivalence stage: the interval-labeled closure layer vs a
# naive BFS transitive-closure model on random DAG taxonomies, called out
# separately because a miss here silently corrupts every engine's output.
echo "== interval-reachability equivalence sweep (PROPTEST_CASES=256, pinned seed) =="
PROPTEST_CASES=256 PROPTEST_RNG_SEED=0x7a78c0ffee \
    cargo test -q -p tsg-taxonomy --test reach_equivalence

# Taxonomy-scale smoke: build a generated 10⁵-concept taxonomy and fail
# if the build exceeds 2 s or closure storage exceeds 50 MB — the
# tripwire against reintroducing quadratic closure state.
echo "== taxonomy_scale smoke (10^5 concepts: build < 2 s, closures < 50 MB) =="
cargo run --release -q -p tsg-bench --bin taxonomy_scale -- --smoke

# Kernel-regression tripwire: re-time the hot bitset kernels (the same
# workload set scripts/bench_snapshot.sh records) and compare against the
# newest BENCH_*.json. A >25% slowdown prints a loud warning block but
# does NOT fail CI — shared runners are too noisy for a hard gate; the
# criterion groups below it give the statistical picture when needed:
#   cargo bench -p tsg-bench -- fused sparse_regimes
echo "== kernel-regression tripwire (vs newest BENCH_*.json) =="
cargo run --release -q -p tsg-bench --bin kernel_gate

# Fault-injection stage: the panic/receiver-drop/forced-steal/capacity
# matrix for the parallel engines, at the acceptance thread counts.
echo "== fault-injection matrix =="
cargo test -q -p taxogram-core --test fault_injection

# Sharded out-of-core stage: shard-count invariance (the sharded SON
# miner byte-identical to serial at every shard/thread count, incl. the
# locally-over-generalized corner), the spill-I/O fault matrix, and a CLI
# smoke that spills a 10-shard mine through a temp dir — asserting the
# spill files are cleaned up on success AND on early termination.
echo "== sharded out-of-core matrix (invariance + spill faults + CLI spill smoke) =="
cargo test -q -p taxogram-core --test metamorphic_relations shard
cargo test -q -p taxogram-core --test shard_faults
spill_smoke_dir="$(mktemp -d)"
trap 'rm -rf "$spill_smoke_dir"' EXIT
cargo run --release -q -p taxogram -- generate --dataset TS25 --scale 0.01 \
    --out "$spill_smoke_dir/data" >/dev/null
# Capture before grepping: `| grep -q` would close the pipe at first
# match, the miner's remaining pattern writes would hit EPIPE, and
# pipefail would fail the stage even though the mine succeeded.
mine_out="$(cargo run --release -q -p taxogram -- mine \
    --taxonomy "$spill_smoke_dir/data/taxonomy.txt" \
    --database "$spill_smoke_dir/data/database.txt" \
    --support 0.4 --max-edges 3 --shards 10 --threads 2 \
    --spill-dir "$spill_smoke_dir")"
printf '%s\n' "$mine_out" | grep -q '# termination: completed'
mine_out="$(cargo run --release -q -p taxogram -- mine \
    --taxonomy "$spill_smoke_dir/data/taxonomy.txt" \
    --database "$spill_smoke_dir/data/database.txt" \
    --support 0.4 --max-edges 3 --shards 10 --time-limit 0 \
    --spill-dir "$spill_smoke_dir")"
printf '%s\n' "$mine_out" | grep -q '# termination: deadline exceeded'
leftover="$(find "$spill_smoke_dir" -name 'tsg-spill-*' | wc -l)"
if [ "$leftover" -ne 0 ]; then
    echo "!! FAIL: $leftover spill director(ies) left behind in $spill_smoke_dir" >&2
    exit 1
fi

# Governance stage: the cancellation/deadline/budget acceptance matrix
# (clean completed-prefix partial results across all four engines) plus
# the seeded parser-mutation sweeps, pinned to one run seed so any
# corruption-induced failure replays bit-for-bit.
echo "== governance matrix + parser mutation (pinned seed) =="
cargo test -q -p taxogram-core --test governance
PROPTEST_RNG_SEED=0x60be41 cargo test -q -p tsg-graph --test parser_mutation
PROPTEST_RNG_SEED=0x60be41 cargo test -q -p tsg-taxonomy --test parser_mutation

# Serve-daemon stage: the protocol fault matrix (slow-loris, torn
# writes, truncation, cancel storms, overload shedding — every delivery
# must earn a typed response or a clean close, never a hang or a leaked
# worker), the θ-monotone result-cache soundness properties (filtered
# cached runs byte-identical to fresh mines), and the synthetic load
# smoke (zero lost responses, clean drain). Latency percentiles and the
# shed rate for these same drivers are recorded by
# scripts/bench_snapshot.sh under the snapshot's "serve_load" key.
echo "== serve daemon matrix (protocol faults + cache soundness + load smoke) =="
cargo test -q -p tsg-serve --test fault_matrix
cargo test -q -p tsg-serve --test cache_soundness
cargo test -q -p tsg-serve --test load_smoke

# Model-checking stage: rebuild the sync facade in tsg_model mode (the
# tsg-check deterministic scheduler + vector-clock race detector) and
# run the concurrency contract tests — bounded-exhaustive interleaving
# exploration with seeded-random top-up past the preemption bound, plus
# the named deterministic fault schedules. A separate target dir keeps
# the --cfg rebuild from thrashing the main cache. Budget: <60s.
echo "== model checker (deterministic interleaving exploration) =="
RUSTFLAGS='--cfg tsg_model' CARGO_TARGET_DIR=target/model \
    cargo test -q -p tsg-check -p taxogram-core --test model_smoke --test model

# Nightly-only deep stages: Miri (UB / memory-model interpreter) and
# ThreadSanitizer over the kernel crates' suites at reduced case counts.
# Both need a nightly toolchain; skip LOUDLY when unavailable so the
# gap is visible in CI logs rather than silently green.
if rustup toolchain list 2>/dev/null | grep -q nightly \
    && rustup component list --toolchain nightly 2>/dev/null | grep -q 'miri.*(installed)'; then
    echo "== miri (nightly) =="
    PROPTEST_CASES=8 cargo +nightly miri test -q \
        -p tsg-bitset -p tsg-graph -p tsg-taxonomy
    PROPTEST_CASES=8 cargo +nightly miri test -q -p taxogram-core channel
else
    echo "!! SKIPPED: miri stage (no nightly toolchain with miri installed)" >&2
fi
if rustup toolchain list 2>/dev/null | grep -q nightly \
    && rustup component list --toolchain nightly 2>/dev/null | grep -q 'rust-src.*(installed)'; then
    echo "== thread sanitizer (nightly) =="
    RUSTFLAGS='-Zsanitizer=thread' CARGO_TARGET_DIR=target/tsan \
        PROPTEST_CASES=8 cargo +nightly test -q \
        -Zbuild-std --target "$(rustc -vV | sed -n 's/^host: //p')" \
        -p tsg-bitset -p tsg-graph -p tsg-taxonomy
    RUSTFLAGS='-Zsanitizer=thread' CARGO_TARGET_DIR=target/tsan \
        PROPTEST_CASES=8 cargo +nightly test -q \
        -Zbuild-std --target "$(rustc -vV | sed -n 's/^host: //p')" \
        -p taxogram-core channel
else
    echo "!! SKIPPED: tsan stage (needs a nightly toolchain with rust-src for -Zbuild-std)" >&2
fi
