#!/usr/bin/env bash
# Full local CI gate: release build, every workspace test, and clippy
# with warnings promoted to errors. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
# Tier-1 first (the root package's fast suites), then the full workspace.
cargo test -q
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings
