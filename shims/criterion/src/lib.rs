//! Minimal `criterion` facade (offline stand-in; see
//! `shims/README.md`).
//!
//! Provides the bench-definition surface this workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] configuration
//! chains, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! warm-up + fixed-sample-count wall-clock loop. Output is one line per
//! benchmark with min/median/max nanoseconds per iteration; there is no
//! outlier analysis, plotting, or saved baseline comparison.
//!
//! Passing `--test` (as `cargo test --benches` does) runs every closure
//! exactly once without timing.

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub mod measurement {
    //! Measurement markers (wall-clock only in the shim).

    /// Wall-clock time measurement.
    pub struct WallTime;
}

/// Identifies one benchmark within a group as `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Benchmark runner state shared by all groups.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Harness flags cargo may pass; all ignored.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Applies CLI configuration (already done in `default`; kept for API
    /// compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            test_mode: self.test_mode,
            filter: self.filter.clone(),
            _parent: PhantomData,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named set of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    test_mode: bool,
    filter: Option<String>,
    _parent: PhantomData<(&'a mut Criterion, M)>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&full);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (no-op in the shim; reports happen per benchmark).
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    test_mode: bool,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times repeated calls of `f` (or calls it once under `--test`).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up doubles as the batch-size estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)).ceil() as u64).clamp(1, 1 << 24);
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples_ns
                .push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
    }

    fn report(&mut self, full_id: &str) {
        if self.test_mode {
            println!("test {full_id} ... ok");
            return;
        }
        if self.samples_ns.is_empty() {
            return;
        }
        self.samples_ns.sort_by(|a, b| a.total_cmp(b));
        let min = self.samples_ns[0];
        let max = self.samples_ns[self.samples_ns.len() - 1];
        let median = median_of_sorted(&self.samples_ns);
        println!(
            "{full_id:<56} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
    }
}

/// Median of an ascending-sorted, non-empty slice.
pub fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_times_and_reports() {
        let mut c = Criterion {
            test_mode: false,
            filter: None,
        };
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        group.bench_function(BenchmarkId::new("spin", 1), |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            });
        });
        group.finish();
        assert!(ran > 3, "warm-up plus samples actually executed: {ran}");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut ran = 0u64;
        let mut group = c.benchmark_group("shim");
        group.bench_with_input("once", &7u64, |b, &x| {
            b.iter(|| {
                ran += x;
                black_box(ran)
            });
        });
        group.finish();
        assert_eq!(ran, 7);
    }

    #[test]
    fn median_handles_even_and_odd() {
        assert_eq!(median_of_sorted(&[1.0, 3.0, 5.0]), 3.0);
        assert_eq!(median_of_sorted(&[1.0, 3.0]), 2.0);
    }
}
