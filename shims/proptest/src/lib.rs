//! Minimal `proptest` facade (offline stand-in; see
//! `shims/README.md`).
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`/`prop_flat_map`, [`Just`], integer ranges, tuples and
//! `Vec<Strategy>`, `collection::{vec, btree_set}`, `sample::select`,
//! `bool::ANY`, regex-string strategies (`&str` as a strategy, covering
//! literals, `.`, `(a|b)` groups, `[a-z0-9#]` classes, and
//! `{m,n}`/`?`/`*`/`+` quantifiers), and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros. Inputs are
//! generated from deterministic per-case seeds (the failing case's seed
//! is printed on failure) — there is **no shrinking**, and
//! `.proptest-regressions` files are ignored.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generation source (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for the given case seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        }
    }

    /// The next uniform 64-bit word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..span` (`span > 0`).
    #[inline]
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input; the case is skipped, not failed.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

/// Result type of a shimmed property-test body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Run configuration; only `cases` is honored by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default (256) multiplied across this workspace's
        // mining-heavy properties makes `cargo test` minutes-slow; 64
        // keeps the suite seconds-scale with adequate coverage.
        ProptestConfig { cases: 64 }
    }
}

/// Executes the generated cases of one property.
pub fn run_property(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    // Env override mirrors the real crate's PROPTEST_CASES.
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);
    // PROPTEST_RNG_SEED pins the whole run to one reproducible stream
    // (decimal or 0x-prefixed hex); CI exports it so a failure there
    // replays bit-for-bit on any host. Unset, each property still derives
    // a deterministic stream from its own name.
    let run_seed = std::env::var("PROPTEST_RNG_SEED")
        .ok()
        .and_then(|v| {
            let v = v.trim();
            match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => v.parse().ok(),
            }
        })
        .unwrap_or(0);
    let mut rejected = 0u32;
    for i in 0..cases {
        // Seed mixes the property name so sibling properties in one file
        // see different streams.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        let seed = run_seed ^ h ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed at case {i} (seed {seed:#x}): {msg}")
            }
        }
    }
    assert!(
        rejected < cases.max(1),
        "property {name}: every case was rejected by prop_assume!"
    );
}

/// A generation strategy for values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                s + rng.below((e - s) as u64 + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// A `&str` is a regex strategy generating matching `String`s, as in the
/// real crate. Supported syntax: literal chars, `.`, escaped literals,
/// `(…|…)` groups, `[a-z0-9#]` classes (ranges and literals), and the
/// quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (the unbounded pair capped
/// at 8 repetitions). The pattern is re-parsed per generation — test
/// patterns are a few dozen chars, so this is noise next to the test
/// body.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut pos = 0;
        regex_gen::alternation(&chars, &mut pos, rng, &mut out);
        assert!(
            pos == chars.len(),
            "unsupported regex strategy {self:?} (stopped at byte {pos})"
        );
        out
    }
}

mod regex_gen {
    //! Recursive-descent generator for the regex subset above. Each
    //! function both parses and emits, advancing `pos`; alternation picks
    //! one branch to emit and parses the rest silently (`emit = false`).

    use super::TestRng;

    /// `alt ::= seq ('|' seq)*` — emits exactly one uniformly-chosen branch.
    pub fn alternation(p: &[char], pos: &mut usize, rng: &mut TestRng, out: &mut String) {
        // Locate the branch starts first so the pick is uniform.
        let start = *pos;
        let mut branches = vec![start];
        let mut probe = start;
        skip_sequence(p, &mut probe);
        while probe < p.len() && p[probe] == '|' {
            probe += 1;
            branches.push(probe);
            skip_sequence(p, &mut probe);
        }
        let chosen = rng.below(branches.len() as u64) as usize;
        for (i, &b) in branches.iter().enumerate() {
            *pos = b;
            sequence(p, pos, rng, out, i == chosen);
            if i + 1 < branches.len() {
                *pos += 1; // consume '|'
            }
        }
    }

    /// Advances past one sequence without generating.
    fn skip_sequence(p: &[char], pos: &mut usize) {
        let mut rng = TestRng::new(0);
        let mut sink = String::new();
        sequence(p, pos, &mut rng, &mut sink, false);
    }

    /// `seq ::= (atom quant?)*`, ending at `|`, `)`, or end of pattern.
    fn sequence(p: &[char], pos: &mut usize, rng: &mut TestRng, out: &mut String, emit: bool) {
        while *pos < p.len() && p[*pos] != '|' && p[*pos] != ')' {
            atom_with_quant(p, pos, rng, out, emit);
        }
    }

    fn atom_with_quant(p: &[char], pos: &mut usize, rng: &mut TestRng, out: &mut String, emit: bool) {
        let atom_start = *pos;
        // Parse the atom once to find its extent; re-run it per repetition.
        let mut probe = atom_start;
        {
            let mut sink = String::new();
            let mut throwaway = TestRng::new(0);
            atom(p, &mut probe, &mut throwaway, &mut sink, false);
        }
        let (reps, after_quant) = quantifier(p, probe, rng);
        for i in 0..reps.max(1) {
            *pos = atom_start;
            atom(p, pos, rng, out, emit && i < reps);
        }
        *pos = after_quant;
    }

    /// Parses an optional quantifier at `pos`; returns (repetitions to
    /// emit, position after the quantifier).
    fn quantifier(p: &[char], pos: usize, rng: &mut TestRng) -> (usize, usize) {
        let pick = |lo: usize, hi: usize, rng: &mut TestRng| {
            lo + rng.below((hi - lo) as u64 + 1) as usize
        };
        match p.get(pos) {
            Some('?') => (pick(0, 1, rng), pos + 1),
            Some('*') => (pick(0, 8, rng), pos + 1),
            Some('+') => (pick(1, 8, rng), pos + 1),
            Some('{') => {
                let close = p[pos..].iter().position(|&c| c == '}').expect("unclosed {") + pos;
                let body: String = p[pos + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((a, b)) => (
                        a.parse().expect("bad {m,n} lower bound"),
                        b.parse().expect("bad {m,n} upper bound"),
                    ),
                    None => {
                        let n = body.parse().expect("bad {n} count");
                        (n, n)
                    }
                };
                (pick(lo, hi, rng), close + 1)
            }
            _ => (1, pos),
        }
    }

    /// `atom ::= '(' alt ')' | '[' class ']' | '.' | '\' char | char`
    fn atom(p: &[char], pos: &mut usize, rng: &mut TestRng, out: &mut String, emit: bool) {
        match p[*pos] {
            '(' => {
                *pos += 1;
                if emit {
                    alternation(p, pos, rng, out);
                } else {
                    let mut sink = String::new();
                    alternation(p, pos, rng, &mut sink);
                }
                assert!(p.get(*pos) == Some(&')'), "unclosed group");
                *pos += 1;
            }
            '[' => {
                let close = p[*pos..].iter().position(|&c| c == ']').expect("unclosed [") + *pos;
                if emit {
                    let members: Vec<char> = class_members(&p[*pos + 1..close]);
                    out.push(members[rng.below(members.len() as u64) as usize]);
                }
                *pos = close + 1;
            }
            '.' => {
                if emit {
                    out.push(any_char(rng));
                }
                *pos += 1;
            }
            '\\' => {
                if emit {
                    out.push(p[*pos + 1]);
                }
                *pos += 2;
            }
            c => {
                if emit {
                    out.push(c);
                }
                *pos += 1;
            }
        }
    }

    /// Expands `a-z0-9#`-style class bodies into their member chars.
    fn class_members(body: &[char]) -> Vec<char> {
        let mut members = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
                members.extend((lo..=hi).filter_map(char::from_u32));
                i += 3;
            } else {
                members.push(body[i]);
                i += 1;
            }
        }
        assert!(!members.is_empty(), "empty character class");
        members
    }

    /// `.`: mostly printable ASCII, with whitespace and multibyte chars
    /// mixed in so parser fuzzing sees the awkward inputs too.
    fn any_char(rng: &mut TestRng) -> char {
        match rng.below(16) {
            0 => '\n',
            1 => '\t',
            2 => ['é', 'λ', '→', '𝄞', '\u{7f}'][rng.below(5) as usize],
            _ => char::from_u32(0x20 + rng.below(0x5f) as u32).expect("printable ASCII"),
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+)
;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Element-wise generation: a `Vec` of strategies yields a `Vec` of values.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Size specifications accepted by the collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max: r.end.saturating_sub(1).max(r.start),
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: (*r.end()).max(*r.start()),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min) as u64 + 1) as usize
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` of values from `element`; sizes are best-effort (the
    /// set may be smaller than drawn when duplicates collide, matching
    /// the real crate's behavior of treating the size as an upper bound).
    pub fn btree_set<S: Strategy>(
        element: S,
        size: impl Into<SizeRange>,
    ) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::{Strategy, TestRng};

    /// Picks uniformly from the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over no options");
        Select { options }
    }

    /// See [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};

    /// Fair coin.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The fair-coin strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! The glob-imported API surface.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };

    pub mod prop {
        //! The `prop::` strategy namespace.
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `ProptestConfig` many generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(stringify!($name), &config, |rng| {
                    $(let $pat = $crate::Strategy::generate(&($strategy), rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strategy),+) $body
            )*
        }
    };
}

/// Debug-printable wrapper used in failure messages (kept public for the
/// macros).
pub struct Shown<'a, T: fmt::Debug>(pub &'a T);

impl<T: fmt::Debug> fmt::Display for Shown<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

// Keep BTreeSet referenced so the collection module's import shows up in
// rustdoc cleanly.
#[doc(hidden)]
pub type _BTreeSetAlias = BTreeSet<u8>;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = super::TestRng::new(1);
        let s = (0usize..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = super::TestRng::new(2);
        let s = (2usize..6).prop_flat_map(|n| prop::collection::vec(0..n, n));
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_wires_strategies((a, b) in (0u32..50, 0u32..50), extra in prop::sample::select(vec![1u32, 2, 3])) {
            prop_assert!(a < 50 && b < 50);
            prop_assert_eq!(extra, extra);
            prop_assume!(a != 99);
        }

        #[test]
        fn vec_of_strategies_generates_elementwise(n in 1usize..5) {
            let strategies: Vec<_> = (0..n).map(Just).collect();
            let mut rng = crate::TestRng::new(9);
            let got = crate::Strategy::generate(&strategies, &mut rng);
            prop_assert_eq!(got, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn regex_strategies_generate_matching_strings() {
        let mut rng = super::TestRng::new(7);
        for _ in 0..200 {
            let s = ".{0,20}".generate(&mut rng);
            assert!(s.chars().count() <= 20);

            let s = "(c|p|q)( -?[0-9a-z#]{1,5}){0,3}".generate(&mut rng);
            let mut chars = s.chars();
            let head = chars.next().unwrap();
            assert!(matches!(head, 'c' | 'p' | 'q'), "bad head in {s:?}");
            for group in s[head.len_utf8()..].split(' ').skip(1) {
                let body = group.strip_prefix('-').unwrap_or(group);
                assert!(
                    (1..=5).contains(&body.len())
                        && body
                            .chars()
                            .all(|c| c.is_ascii_digit() || c.is_ascii_lowercase() || c == '#'),
                    "bad group {group:?} in {s:?}"
                );
            }

            let s = "ab+c?".generate(&mut rng);
            assert!(s.starts_with('a'));
            assert!(s.trim_start_matches('a').trim_end_matches('c').chars().all(|c| c == 'b'));
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic_with_seed() {
        super::run_property(
            "always_fails",
            &ProptestConfig::with_cases(3),
            |_rng| Err(super::TestCaseError::Fail("nope".into())),
        );
    }
}
