//! Minimal `rand` facade (offline stand-in; see `shims/README.md`).
//!
//! Provides the slice of the rand 0.10 API this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `RngExt::{random, random_range, random_bool}`. The generator is
//! xoshiro256++ seeded through splitmix64 — statistically solid for
//! synthetic-dataset generation, though sequences differ from the real
//! crate's `StdRng` (ChaCha12), so seeded datasets differ in content.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly by [`RngExt::random`].
pub trait StandardUniform {
    /// Samples one value from `rng`.
    fn sample(rng: &mut impl RngCore) -> Self;
}

impl StandardUniform for f64 {
    #[inline]
    fn sample(rng: &mut impl RngCore) -> f64 {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for u64 {
    #[inline]
    fn sample(rng: &mut impl RngCore) -> u64 {
        rng.next_u64()
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = ((end - start) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start + (reduce(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = ((end as i64).wrapping_sub(start as i64) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

impl_signed_sample_range!(i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Multiply-shift range reduction (Lemire); bias is negligible for the
/// dataset-generation spans used here (≪ 2⁶⁴).
#[inline]
fn reduce(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

/// Convenience sampling methods, mirroring rand 0.10's `Rng`/`RngExt`.
pub trait RngExt: RngCore {
    /// A uniform sample of `T` (for `f64`: uniform in `[0, 1)`).
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++ seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the canonical xoshiro seeding method.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: usize = (0..32)
            .filter(|_| a.random_range(0u64..u64::MAX) == c.random_range(0u64..u64::MAX))
            .count();
        assert_eq!(same, 0, "different seeds diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5u32..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        let heads = (0..2000).filter(|_| rng.random_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "p=0.5 is roughly fair: {heads}");
    }
}
