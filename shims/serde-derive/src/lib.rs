//! No-op `Serialize`/`Deserialize` derives (offline serde stand-in).
//!
//! Nothing in this workspace serializes at runtime — the derives exist so
//! downstream users of the real `serde` could — so the shim derives expand
//! to nothing while still registering the `#[serde(...)]` helper attribute
//! the annotated types use.

use proc_macro::TokenStream;

/// Expands to nothing; accepts `#[serde(...)]` field/container attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts `#[serde(...)]` field/container attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
