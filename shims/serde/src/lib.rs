//! Minimal `serde` facade (offline stand-in; see `shims/README.md`).
//!
//! Re-exports the no-op derive macros. No trait machinery is provided
//! because nothing in this workspace serializes at runtime.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
