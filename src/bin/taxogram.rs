//! The `taxogram` CLI binary; see [`taxogram::cli`] for commands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = taxogram::cli::run(&args, &mut std::io::stdout());
    std::process::exit(code);
}
