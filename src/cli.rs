//! The `taxogram` command-line interface.
//!
//! Three subcommands, all file-driven (formats documented in
//! [`tsg_graph::io`] and [`tsg_taxonomy::io`]):
//!
//! ```text
//! taxogram mine --taxonomy t.txt --database d.txt --support 0.2
//!               [--max-edges N] [--baseline] [--algorithm taxogram|tacgm]
//! taxogram stats --database d.txt
//! taxogram generate --dataset D1000 --scale 0.05 --out DIR
//! ```
//!
//! The logic lives here (unit-testable, writes to any `io::Write`); the
//! binary in `src/bin/taxogram.rs` is a thin wrapper.

// tsg-lint: allow(index) — suffix slicing is guarded by the match on the last byte, and flag positions enumerate raw's own indices

use std::io::Write;
use tsg_graph::{DatabaseStats, GraphDatabase, LabelTable};
use tsg_taxonomy::Taxonomy;

/// A fatal CLI error with an exit-worthy message.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Minimal flag parser: `--flag value` pairs plus a leading subcommand.
pub struct Args {
    subcommand: String,
    flags: Vec<(String, String)>,
}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    /// Fails on a missing subcommand or a flag without a value.
    pub fn parse(raw: &[String]) -> Result<Args, CliError> {
        let subcommand = raw
            .first()
            .ok_or_else(|| err(USAGE))?
            .clone();
        let mut flags = Vec::new();
        let mut i = 1;
        while i < raw.len() {
            let name = raw[i]
                .strip_prefix("--")
                .ok_or_else(|| err(format!("expected --flag, got {:?}", raw[i])))?;
            let value = raw
                .get(i + 1)
                .ok_or_else(|| err(format!("--{name} needs a value")))?;
            flags.push((name.to_owned(), value.clone()));
            i += 2;
        }
        Ok(Args { subcommand, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| err(format!("missing required flag --{name}")))
    }
}

/// Usage text.
pub const USAGE: &str = "usage: taxogram <mine|serve|stats|generate> [flags]
  mine      --taxonomy FILE --database FILE --support θ
            [--max-edges N] [--baseline true] [--algorithm taxogram|tacgm]
            [--threads N] [--partitions N] [--dot-dir DIR]
            [--shards N] [--spill-dir DIR]   (out-of-core sharded mining;
              composes with --threads and the governance flags)
            [--filter closed|maximal|interesting:R]
            [--time-limit SECONDS] [--memory-limit BYTES[K|M|G]]
            [--max-patterns N]   (budgeted runs report '# termination:')
  serve     --taxonomy FILE --database FILE [--addr HOST:PORT]
            [--workers N] [--queue N] [--max-connections N] [--cache N]
            [--max-time-limit SECONDS] [--default-time-limit SECONDS]
            [--port-file PATH] [--max-runtime-ms N]
            (resident mining daemon, JSON lines over TCP; stop with a
             client {\"op\":\"shutdown\"}, a 'shutdown' line on stdin
             (EOF too when stdin is a terminal), or the runtime bound
             — all drain gracefully)
  stats     --database FILE
  generate  --dataset ID --out DIR [--scale S]   (ID per Table 1, e.g. D1000, NC20, TD8, PTE)";

/// Runs the CLI against the given output stream. Returns the process exit
/// code.
pub fn run(raw: &[String], out: &mut dyn Write) -> i32 {
    match dispatch(raw, out) {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            2
        }
    }
}

fn dispatch(raw: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(raw)?;
    match args.subcommand.as_str() {
        "mine" => mine(&args, out),
        "serve" => serve(&args, out),
        "stats" => stats(&args, out),
        "generate" => generate(&args, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(err(format!("unknown subcommand {other:?}\n{USAGE}"))),
    }
}

fn load_inputs(args: &Args) -> Result<(LabelTable, Taxonomy, GraphDatabase), CliError> {
    let tax_text = std::fs::read_to_string(args.require("taxonomy")?)?;
    let (names, taxonomy) =
        tsg_taxonomy::io::read_taxonomy(&tax_text).map_err(|e| err(e.to_string()))?;
    let db_text = std::fs::read_to_string(args.require("database")?)?;
    let db = tsg_graph::io::read_database(&db_text).map_err(|e| err(e.to_string()))?;
    Ok((names, taxonomy, db))
}

/// Parses a byte count with an optional `K`/`M`/`G` suffix (powers of
/// 1024), e.g. `512`, `64K`, `8M`, `1G`.
fn parse_bytes(s: &str) -> Option<usize> {
    let (digits, shift) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 10),
        b'M' | b'm' => (&s[..s.len() - 1], 20),
        b'G' | b'g' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n: usize = digits.parse().ok()?;
    n.checked_shl(shift)
}

/// Collects the governance flags into [`taxogram_core::GovernOptions`];
/// `None` when no governance flag was given (run ungoverned).
fn govern_flags(args: &Args) -> Result<Option<taxogram_core::GovernOptions>, CliError> {
    let mut budget = taxogram_core::Budget::unlimited();
    if let Some(s) = args.get("time-limit") {
        let secs = s
            .parse::<f64>()
            .ok()
            .filter(|v| *v >= 0.0 && v.is_finite())
            .ok_or_else(|| err("--time-limit must be a non-negative number of seconds"))?;
        budget = budget.deadline(std::time::Duration::from_secs_f64(secs));
    }
    if let Some(s) = args.get("memory-limit") {
        budget = budget.max_peak_bytes(
            parse_bytes(s).ok_or_else(|| err("--memory-limit must be BYTES with optional K/M/G"))?,
        );
    }
    if let Some(s) = args.get("max-patterns") {
        budget = budget.max_patterns(
            s.parse()
                .map_err(|_| err("--max-patterns must be an integer"))?,
        );
    }
    if budget.is_unlimited() {
        return Ok(None);
    }
    Ok(Some(taxogram_core::GovernOptions::with_budget(budget)))
}

fn mine(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let (names, taxonomy, db) = load_inputs(args)?;
    let theta: f64 = args
        .require("support")?
        .parse()
        .map_err(|_| err("--support must be a number in [0, 1]"))?;
    let max_edges: Option<usize> = match args.get("max-edges") {
        Some(s) => Some(s.parse().map_err(|_| err("--max-edges must be an integer"))?),
        None => None,
    };
    let algorithm = args.get("algorithm").unwrap_or("taxogram");
    let name_of = |l: tsg_graph::NodeLabel| {
        names
            .name(l)
            .map(str::to_owned)
            .unwrap_or_else(|| l.to_string())
    };
    let threads: usize = match args.get("threads") {
        Some(s) => s.parse().map_err(|_| err("--threads must be an integer"))?,
        None => 1,
    };
    let partitions: usize = match args.get("partitions") {
        Some(s) => s.parse().map_err(|_| err("--partitions must be an integer"))?,
        None => 1,
    };
    let started = std::time::Instant::now();
    let printed = match algorithm {
        "taxogram" => {
            let mut cfg = if args.get("baseline") == Some("true") {
                taxogram_core::TaxogramConfig::baseline(theta)
            } else {
                taxogram_core::TaxogramConfig::with_threshold(theta)
            };
            cfg.max_edges = max_edges;
            let shards: usize = match args.get("shards") {
                Some(s) => s.parse().map_err(|_| err("--shards must be an integer"))?,
                None => 0,
            };
            if shards > 0 {
                // Out-of-core sharded SON mining: spills the database to
                // disk, mines shard-parallel, and (unlike --partitions)
                // composes with governance.
                if partitions > 1 {
                    return Err(err("--shards and --partitions are mutually exclusive"));
                }
                let opts = taxogram_core::ShardOptions {
                    shards,
                    threads: threads.max(1),
                    spill_dir: args.get("spill-dir").map(std::path::PathBuf::from),
                    ..Default::default()
                };
                let outcome = match govern_flags(args)? {
                    Some(govern) => taxogram_core::mine_sharded_governed(
                        &cfg, &db, &taxonomy, &opts, &govern,
                    ),
                    None => taxogram_core::mine_sharded(&cfg, &db, &taxonomy, &opts),
                }
                .map_err(|e| err(e.to_string()))?;
                for p in outcome.result.sorted_patterns() {
                    print_pattern(out, &p.graph, p.support_count, db.len(), &name_of)?;
                }
                let s = &outcome.shard_stats;
                writeln!(
                    out,
                    "# {} patterns from {} shards ({} candidates, {} globally infrequent, \
                     {} bytes spilled / largest shard {}, {} db streams)",
                    outcome.result.patterns.len(),
                    s.shards,
                    s.candidates,
                    s.globally_infrequent,
                    s.spilled_bytes,
                    s.largest_shard_bytes,
                    s.db_streams
                )?;
                let t = &outcome.termination;
                writeln!(
                    out,
                    "# termination: {} ({} classes finished, {} abandoned)",
                    t.reason, t.classes_finished, t.classes_abandoned
                )?;
                outcome.result.patterns.len()
            } else if partitions > 1 {
                if govern_flags(args)?.is_some() {
                    return Err(err(
                        "--time-limit/--memory-limit/--max-patterns are not supported with --partitions",
                    ));
                }
                // Two-pass partitioned ("disk-based") mining.
                let parts = taxogram_core::son::partition(&db, partitions);
                let r = taxogram_core::son::mine_partitioned(&cfg, &parts, &taxonomy)
                    .map_err(|e| err(e.to_string()))?;
                for p in &r.patterns {
                    print_pattern(out, &p.graph, p.support_count, db.len(), &name_of)?;
                }
                writeln!(
                    out,
                    "# {} patterns from {} partitions ({} candidates)",
                    r.patterns.len(),
                    r.stats.partitions,
                    r.stats.candidates
                )?;
                r.patterns.len()
            } else {
                // threads > 1 uses the streaming pipelined engine (Step 2
                // and Step 3 overlapped); threads <= 1 is the serial miner.
                // Governance flags route through the governed entry point
                // and surface the termination report as a comment line.
                let (r, termination) = match govern_flags(args)? {
                    Some(govern) => {
                        let outcome = taxogram_core::mine_pipelined_governed(
                            &cfg,
                            &db,
                            &taxonomy,
                            taxogram_core::PipelineOptions {
                                threads,
                                ..Default::default()
                            },
                            &govern,
                        )
                        .map_err(|e| err(e.to_string()))?;
                        (outcome.result, Some(outcome.termination))
                    }
                    None => (
                        taxogram_core::mine_pipelined(&cfg, &db, &taxonomy, threads)
                            .map_err(|e| err(e.to_string()))?,
                        None,
                    ),
                };
                // Optional post-filters on the minimal pattern set.
                let selected: Vec<&taxogram_core::Pattern> = match args.get("filter") {
                    None => r.sorted_patterns(),
                    Some("closed") => {
                        taxogram_core::postprocess::closed_patterns(&r.patterns, &taxonomy)
                    }
                    Some("maximal") => {
                        taxogram_core::postprocess::maximal_patterns(&r.patterns, &taxonomy)
                    }
                    Some(f) => {
                        let factor: f64 = f
                            .strip_prefix("interesting:")
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| {
                                err("--filter must be closed, maximal, or interesting:R")
                            })?;
                        taxogram_core::interest::r_interesting(&r.patterns, &db, &taxonomy, factor)
                            .into_iter()
                            .map(|(p, _)| p)
                            .collect()
                    }
                };
                if let Some(dir) = args.get("dot-dir") {
                    let dir = std::path::Path::new(dir);
                    std::fs::create_dir_all(dir)?;
                    for (i, p) in selected.iter().enumerate().take(100) {
                        let dot = tsg_graph::dot::to_dot(&p.graph, &format!("pattern_{i}"), Some(&names));
                        std::fs::write(dir.join(format!("pattern_{i:03}.dot")), dot)?;
                    }
                }
                for p in &selected {
                    print_pattern(out, &p.graph, p.support_count, db.len(), &name_of)?;
                }
                writeln!(
                    out,
                    "# {} of {} patterns after filter, {} classes, {} occurrence-index updates",
                    selected.len(),
                    r.patterns.len(),
                    r.stats.classes,
                    r.stats.oi_updates
                )?;
                if let Some(t) = &termination {
                    writeln!(
                        out,
                        "# termination: {} ({} classes finished, {} abandoned)",
                        t.reason, t.classes_finished, t.classes_abandoned
                    )?;
                }
                selected.len()
            }
        }
        "tacgm" => {
            if govern_flags(args)?.is_some() {
                return Err(err(
                    "--time-limit/--memory-limit/--max-patterns are not supported with --algorithm tacgm",
                ));
            }
            let mut cfg = tsg_tacgm::TacgmConfig::with_threshold(theta);
            cfg.max_edges = max_edges;
            let r = tsg_tacgm::mine(&db, &taxonomy, &cfg).map_err(|e| err(e.to_string()))?;
            for p in &r.patterns {
                print_pattern(out, &p.graph, p.support_count, db.len(), &name_of)?;
            }
            writeln!(
                out,
                "# {} patterns, {} candidates generated",
                r.patterns.len(),
                r.stats.candidates
            )?;
            r.patterns.len()
        }
        other => return Err(err(format!("unknown --algorithm {other:?}"))),
    };
    writeln!(
        out,
        "# mined {} patterns in {:.1}ms",
        printed,
        started.elapsed().as_secs_f64() * 1000.0
    )?;
    Ok(())
}

/// The `serve` subcommand: load once, bind, and answer mining queries
/// until a shutdown arrives. With no signal handling available
/// (`unsafe` is forbidden workspace-wide), the stop channels are: a
/// client `{"op":"shutdown"}`, a `shutdown` line on stdin (the SIGTERM
/// stand-in under a process supervisor; EOF also stops the daemon when
/// stdin is a terminal — ctrl-d — but a daemonized server whose stdin
/// is `/dev/null` keeps running), or `--max-runtime-ms`.
fn serve(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let (_names, taxonomy, db) = load_inputs(args)?;
    let (graphs, concepts) = (db.len(), taxonomy.concept_count());
    let mut opts = tsg_serve::ServeOptions::default();
    let parse_count = |name: &str, dflt: usize| -> Result<usize, CliError> {
        match args.get(name) {
            Some(s) => s
                .parse()
                .map_err(|_| err(format!("--{name} must be a positive integer"))),
            None => Ok(dflt),
        }
    };
    let parse_secs = |name: &str| -> Result<Option<std::time::Duration>, CliError> {
        match args.get(name) {
            Some(s) => s
                .parse::<f64>()
                .ok()
                .filter(|v| *v >= 0.0 && v.is_finite())
                .map(|v| Some(std::time::Duration::from_secs_f64(v)))
                .ok_or_else(|| err(format!("--{name} must be a non-negative number of seconds"))),
            None => Ok(None),
        }
    };
    opts.workers = parse_count("workers", opts.workers)?.max(1);
    opts.queue_depth = parse_count("queue", opts.queue_depth)?.max(1);
    opts.max_connections = parse_count("max-connections", opts.max_connections)?.max(1);
    opts.cache_entries = parse_count("cache", opts.cache_entries)?;
    if let Some(d) = parse_secs("max-time-limit")? {
        opts.max_time_limit = d;
    }
    if let Some(d) = parse_secs("default-time-limit")? {
        opts.default_time_limit = Some(d);
    }
    let max_runtime: Option<std::time::Duration> = match args.get("max-runtime-ms") {
        Some(s) => Some(std::time::Duration::from_millis(
            s.parse()
                .map_err(|_| err("--max-runtime-ms must be an integer"))?,
        )),
        None => None,
    };
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878");
    let handle =
        tsg_serve::Server::bind(addr, db, taxonomy, opts.clone()).map_err(|e| err(e.to_string()))?;
    writeln!(
        out,
        "listening on {} ({graphs} graphs, {concepts} concepts; {} workers, queue {}, cache {})",
        handle.addr(),
        opts.workers,
        opts.queue_depth,
        opts.cache_entries
    )?;
    out.flush()?;
    if let Some(path) = args.get("port-file") {
        std::fs::write(path, handle.addr().to_string())?;
    }
    if max_runtime.is_none() {
        // Interactive/supervised mode: watch stdin for an explicit
        // `shutdown` line (and, on a terminal, ctrl-d). EOF on a
        // non-terminal stdin is *not* a shutdown — a daemonized server
        // (`nohup … </dev/null`, most supervisors) sees EOF instantly
        // and must keep serving. The watcher speaks the wire protocol
        // to itself — no shared state with the server.
        let eof_shuts_down = std::io::IsTerminal::is_terminal(&std::io::stdin());
        let peer = handle.addr();
        let _watcher = std::thread::Builder::new() // tsg-lint: allow(facade) — CLI stdin watcher at the process boundary; never runs inside a mining engine
            .name("taxogram-serve-stdin".into())
            .spawn(move || stdin_shutdown_watcher(peer, eof_shuts_down));
    }
    let _ = handle.wait_shutdown_requested(max_runtime);
    let stats = handle.stats();
    let report = handle.shutdown();
    writeln!(
        out,
        "drained {} in {:.1}ms (forced_cancels {}); served {} requests: {} ok, {} shed, {} errors, {} cache hits",
        if report.clean { "clean" } else { "forced" },
        report.drain_ms,
        report.forced_cancels,
        stats.requests,
        stats.results_ok,
        stats.shed,
        stats.errors,
        stats.cache_hits
    )?;
    Ok(())
}

/// Blocks on stdin; a `shutdown` line — or EOF, when `eof_shuts_down`
/// (stdin is a terminal) — triggers a protocol-level shutdown request
/// against the server's own address. EOF on a non-terminal stdin just
/// ends the watcher so a daemonized server keeps running.
fn stdin_shutdown_watcher(addr: std::net::SocketAddr, eof_shuts_down: bool) {
    let mut line = String::new();
    loop {
        line.clear();
        match std::io::stdin().read_line(&mut line) {
            Ok(0) | Err(_) => {
                if !eof_shuts_down {
                    return;
                }
                break;
            }
            Ok(_) if line.trim() == "shutdown" => break,
            Ok(_) => {}
        }
    }
    if let Ok(mut s) = std::net::TcpStream::connect_timeout(&addr, std::time::Duration::from_secs(1))
    {
        let _ = s.write_all(b"{\"op\":\"shutdown\"}\n");
        let _ = s.set_read_timeout(Some(std::time::Duration::from_millis(500)));
        let mut ack = [0u8; 128];
        let _ = std::io::Read::read(&mut s, &mut ack);
    }
}

fn print_pattern(
    out: &mut dyn Write,
    g: &tsg_graph::LabeledGraph,
    support_count: usize,
    db_len: usize,
    name_of: &dyn Fn(tsg_graph::NodeLabel) -> String,
) -> Result<(), CliError> {
    let nodes: Vec<String> = g.labels().iter().map(|&l| name_of(l)).collect();
    let edges: Vec<String> = g
        .edges()
        .iter()
        .map(|e| format!("{}-{}({})", e.u, e.v, e.label))
        .collect();
    writeln!(
        out,
        "{:.3}  [{}]  {}",
        support_count as f64 / db_len as f64,
        nodes.join(", "),
        edges.join(" ")
    )?;
    Ok(())
}

fn stats(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let db_text = std::fs::read_to_string(args.require("database")?)?;
    let db = tsg_graph::io::read_database(&db_text).map_err(|e| err(e.to_string()))?;
    let s = db.stats();
    writeln!(out, "{}", DatabaseStats::table_header())?;
    writeln!(out, "{}", s.table_row("-"))?;
    Ok(())
}

fn generate(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let id = parse_dataset_id(args.require("dataset")?)?;
    let scale: f64 = args
        .get("scale")
        .unwrap_or("0.05")
        .parse()
        .map_err(|_| err("--scale must be a number in (0, 1]"))?;
    if !(scale > 0.0 && scale <= 1.0) {
        return Err(err("--scale must be in (0, 1]"));
    }
    let dir = std::path::Path::new(args.require("out")?);
    std::fs::create_dir_all(dir)?;
    let ds = tsg_datagen::registry::build(id, scale);
    std::fs::write(
        dir.join("taxonomy.txt"),
        tsg_taxonomy::io::write_taxonomy(&ds.taxonomy, None),
    )?;
    std::fs::write(
        dir.join("database.txt"),
        tsg_graph::io::write_database(&ds.database),
    )?;
    let s = ds.database.stats();
    writeln!(
        out,
        "wrote {} ({} graphs, {} concepts) to {}",
        id,
        s.graph_count,
        ds.taxonomy.present_count(),
        dir.display()
    )?;
    Ok(())
}

/// Parses a Table 1 dataset id like `D1000`, `NC20`, `ED09`, `TD8`,
/// `TS400`, `PTE`.
pub fn parse_dataset_id(s: &str) -> Result<tsg_datagen::registry::DatasetId, CliError> {
    use tsg_datagen::registry::DatasetId;
    let bad = || err(format!("unknown dataset id {s:?} (see Table 1: D1000…D5000, NC10…NC40, ED06…ED11, TD5…TD15, TS25…TS3200, PTE)"));
    if s == "PTE" {
        return Ok(DatasetId::PTE);
    }
    if let Some(rest) = s.strip_prefix("NC") {
        return rest.parse().map(DatasetId::NC).map_err(|_| bad());
    }
    if let Some(rest) = s.strip_prefix("ED") {
        let pct: u32 = rest.parse().map_err(|_| bad())?;
        return Ok(DatasetId::ED(pct as f64 / 100.0));
    }
    if let Some(rest) = s.strip_prefix("TD") {
        return rest.parse().map(DatasetId::TD).map_err(|_| bad());
    }
    if let Some(rest) = s.strip_prefix("TS") {
        return rest.parse().map(DatasetId::TS).map_err(|_| bad());
    }
    if let Some(rest) = s.strip_prefix("D") {
        return rest.parse().map(DatasetId::D).map_err(|_| bad());
    }
    Err(bad())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(args: &[&str]) -> (i32, String) {
        let raw: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let code = run(&raw, &mut buf);
        (code, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_capture(&["help"]);
        assert_eq!(code, 0);
        assert!(out.contains("usage"));
    }

    #[test]
    fn unknown_subcommand_fails() {
        let (code, out) = run_capture(&["frobnicate"]);
        assert_eq!(code, 2);
        assert!(out.contains("unknown subcommand"));
    }

    #[test]
    fn missing_flags_fail() {
        let (code, out) = run_capture(&["mine", "--support", "0.5"]);
        assert_eq!(code, 2);
        assert!(out.contains("--taxonomy"));
        let (code, _) = run_capture(&["mine", "--support"]);
        assert_eq!(code, 2);
    }

    #[test]
    fn parse_dataset_ids() {
        use tsg_datagen::registry::DatasetId;
        assert_eq!(parse_dataset_id("D1000").unwrap(), DatasetId::D(1000));
        assert_eq!(parse_dataset_id("NC20").unwrap(), DatasetId::NC(20));
        assert_eq!(parse_dataset_id("ED09").unwrap(), DatasetId::ED(0.09));
        assert_eq!(parse_dataset_id("TD8").unwrap(), DatasetId::TD(8));
        assert_eq!(parse_dataset_id("TS400").unwrap(), DatasetId::TS(400));
        assert_eq!(parse_dataset_id("PTE").unwrap(), DatasetId::PTE);
        assert!(parse_dataset_id("X9").is_err());
        assert!(parse_dataset_id("Dxx").is_err());
    }

    #[test]
    fn generate_stats_mine_round_trip() {
        let dir = std::env::temp_dir().join(format!("taxogram-cli-test-{}", std::process::id()));
        let dirs = dir.to_string_lossy().to_string();
        let (code, out) = run_capture(&[
            "generate", "--dataset", "TS25", "--scale", "0.01", "--out", &dirs,
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("wrote TS25"));
        let taxf = dir.join("taxonomy.txt").to_string_lossy().to_string();
        let dbf = dir.join("database.txt").to_string_lossy().to_string();

        let (code, out) = run_capture(&["stats", "--database", &dbf]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("Graphs"));

        let (code, out) = run_capture(&[
            "mine", "--taxonomy", &taxf, "--database", &dbf, "--support", "0.4",
            "--max-edges", "3",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("# mined"), "{out}");

        let (code, out) = run_capture(&[
            "mine", "--taxonomy", &taxf, "--database", &dbf, "--support", "0.4",
            "--max-edges", "3", "--algorithm", "tacgm",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("candidates generated"), "{out}");

        // Parallel and partitioned modes produce the same pattern count.
        let (code, serial_out) = run_capture(&[
            "mine", "--taxonomy", &taxf, "--database", &dbf, "--support", "0.4",
            "--max-edges", "3",
        ]);
        assert_eq!(code, 0);
        let (code, par_out) = run_capture(&[
            "mine", "--taxonomy", &taxf, "--database", &dbf, "--support", "0.4",
            "--max-edges", "3", "--threads", "4",
        ]);
        assert_eq!(code, 0);
        let count = |s: &str| s.lines().filter(|l| !l.starts_with('#')).count();
        assert_eq!(count(&serial_out), count(&par_out));
        let (code, son_out) = run_capture(&[
            "mine", "--taxonomy", &taxf, "--database", &dbf, "--support", "0.4",
            "--max-edges", "3", "--partitions", "3",
        ]);
        assert_eq!(code, 0, "{son_out}");
        assert!(son_out.contains("partitions"), "{son_out}");
        assert_eq!(count(&serial_out), count(&son_out), "same pattern count either way");

        // DOT export writes pattern files.
        let dotdir = dir.join("dots").to_string_lossy().to_string();
        let (code, _) = run_capture(&[
            "mine", "--taxonomy", &taxf, "--database", &dbf, "--support", "0.4",
            "--max-edges", "3", "--dot-dir", &dotdir,
        ]);
        assert_eq!(code, 0);
        let wrote = std::fs::read_dir(&dotdir).unwrap().count();
        assert!(wrote > 0, "dot files written");

        // Post-filters never grow the set and parse their arguments.
        for filter in ["closed", "maximal", "interesting:1.0"] {
            let (code, fout) = run_capture(&[
                "mine", "--taxonomy", &taxf, "--database", &dbf, "--support", "0.4",
                "--max-edges", "3", "--filter", filter,
            ]);
            assert_eq!(code, 0, "{fout}");
            assert!(fout.contains("after filter"), "{fout}");
            assert!(count(&fout) <= count(&serial_out), "{filter} filtered up?");
        }
        let (code, fout) = run_capture(&[
            "mine", "--taxonomy", &taxf, "--database", &dbf, "--support", "0.4",
            "--max-edges", "3", "--filter", "bogus",
        ]);
        assert_eq!(code, 2);
        assert!(fout.contains("--filter"), "{fout}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_mine_matches_serial_and_cleans_spill() {
        let dir = std::env::temp_dir().join(format!("taxogram-cli-shard-{}", std::process::id()));
        let dirs = dir.to_string_lossy().to_string();
        let (code, out) = run_capture(&[
            "generate", "--dataset", "TS25", "--scale", "0.01", "--out", &dirs,
        ]);
        assert_eq!(code, 0, "{out}");
        let taxf = dir.join("taxonomy.txt").to_string_lossy().to_string();
        let dbf = dir.join("database.txt").to_string_lossy().to_string();
        let spilldir = dir.join("spill");
        std::fs::create_dir_all(&spilldir).unwrap();
        let spills = spilldir.to_string_lossy().to_string();
        let pattern_lines = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(str::to_string)
                .collect()
        };

        let (code, serial_out) = run_capture(&[
            "mine", "--taxonomy", &taxf, "--database", &dbf, "--support", "0.4",
            "--max-edges", "3",
        ]);
        assert_eq!(code, 0, "{serial_out}");

        // Sharded multi-threaded mining emits the same patterns and
        // leaves no spill files behind.
        let (code, shard_out) = run_capture(&[
            "mine", "--taxonomy", &taxf, "--database", &dbf, "--support", "0.4",
            "--max-edges", "3", "--shards", "4", "--threads", "2",
            "--spill-dir", &spills,
        ]);
        assert_eq!(code, 0, "{shard_out}");
        assert!(shard_out.contains("shards"), "{shard_out}");
        assert!(shard_out.contains("# termination: completed"), "{shard_out}");
        assert_eq!(
            pattern_lines(&serial_out),
            pattern_lines(&shard_out),
            "sharded pattern listing must match the serial listing line-for-line"
        );
        assert_eq!(
            std::fs::read_dir(&spilldir).unwrap().count(),
            0,
            "spill files must be cleaned up"
        );

        // Sharding composes with governance (which --partitions rejects):
        // an expired deadline reports truthfully and still cleans up.
        let (code, gov_out) = run_capture(&[
            "mine", "--taxonomy", &taxf, "--database", &dbf, "--support", "0.4",
            "--max-edges", "3", "--shards", "4", "--time-limit", "0",
            "--spill-dir", &spills,
        ]);
        assert_eq!(code, 0, "{gov_out}");
        assert!(gov_out.contains("# termination: deadline exceeded"), "{gov_out}");
        assert_eq!(std::fs::read_dir(&spilldir).unwrap().count(), 0);

        // Mutually exclusive with --partitions.
        let (code, out) = run_capture(&[
            "mine", "--taxonomy", &taxf, "--database", &dbf, "--support", "0.4",
            "--shards", "2", "--partitions", "2",
        ]);
        assert_eq!(code, 2);
        assert!(out.contains("mutually exclusive"), "{out}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_bytes_accepts_suffixes() {
        assert_eq!(parse_bytes("512"), Some(512));
        assert_eq!(parse_bytes("64K"), Some(64 << 10));
        assert_eq!(parse_bytes("8M"), Some(8 << 20));
        assert_eq!(parse_bytes("1g"), Some(1 << 30));
        assert_eq!(parse_bytes(""), None);
        assert_eq!(parse_bytes("x"), None);
        assert_eq!(parse_bytes("-1"), None);
        assert_eq!(parse_bytes("3.5M"), None);
    }

    #[test]
    fn governed_mine_reports_termination() {
        let dir = std::env::temp_dir().join(format!("taxogram-cli-gov-{}", std::process::id()));
        let dirs = dir.to_string_lossy().to_string();
        let (code, out) = run_capture(&[
            "generate", "--dataset", "TS25", "--scale", "0.01", "--out", &dirs,
        ]);
        assert_eq!(code, 0, "{out}");
        let taxf = dir.join("taxonomy.txt").to_string_lossy().to_string();
        let dbf = dir.join("database.txt").to_string_lossy().to_string();

        // A generous pattern budget completes; the report says so.
        let (code, out) = run_capture(&[
            "mine", "--taxonomy", &taxf, "--database", &dbf, "--support", "0.4",
            "--max-edges", "3", "--max-patterns", "100000",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("# termination: completed"), "{out}");

        // An expired deadline yields a truthful early-stop report, not
        // an error.
        let (code, out) = run_capture(&[
            "mine", "--taxonomy", &taxf, "--database", &dbf, "--support", "0.4",
            "--max-edges", "3", "--time-limit", "0",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("# termination: deadline exceeded"), "{out}");

        // Bad flag values and unsupported combinations fail cleanly.
        let (code, out) = run_capture(&[
            "mine", "--taxonomy", &taxf, "--database", &dbf, "--support", "0.4",
            "--memory-limit", "lots",
        ]);
        assert_eq!(code, 2);
        assert!(out.contains("--memory-limit"), "{out}");
        let (code, out) = run_capture(&[
            "mine", "--taxonomy", &taxf, "--database", &dbf, "--support", "0.4",
            "--max-patterns", "5", "--partitions", "2",
        ]);
        assert_eq!(code, 2);
        assert!(out.contains("--partitions"), "{out}");
        let (code, out) = run_capture(&[
            "mine", "--taxonomy", &taxf, "--database", &dbf, "--support", "0.4",
            "--max-patterns", "5", "--algorithm", "tacgm",
        ]);
        assert_eq!(code, 2);
        assert!(out.contains("tacgm"), "{out}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_round_trip_over_the_wire() {
        use std::io::{BufRead, BufReader, Write as _};

        let dir = std::env::temp_dir().join(format!("taxogram-cli-serve-{}", std::process::id()));
        let dirs = dir.to_string_lossy().to_string();
        let (code, out) = run_capture(&[
            "generate", "--dataset", "TS25", "--scale", "0.01", "--out", &dirs,
        ]);
        assert_eq!(code, 0, "{out}");
        let taxf = dir.join("taxonomy.txt").to_string_lossy().to_string();
        let dbf = dir.join("database.txt").to_string_lossy().to_string();
        let port_file = dir.join("port");
        let pf = port_file.to_string_lossy().to_string();

        // The daemon runs on its own thread with a runtime bound as the
        // backstop; the test stops it sooner via the shutdown op.
        let server = std::thread::spawn({
            let (taxf, dbf, pf) = (taxf.clone(), dbf.clone(), pf.clone());
            move || {
                run_capture(&[
                    "serve", "--taxonomy", &taxf, "--database", &dbf,
                    "--addr", "127.0.0.1:0", "--workers", "1",
                    "--max-runtime-ms", "30000", "--port-file", &pf,
                ])
            }
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr: std::net::SocketAddr = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                if let Ok(a) = s.trim().parse() {
                    break a;
                }
            }
            assert!(std::time::Instant::now() < deadline, "port file never appeared");
            std::thread::sleep(std::time::Duration::from_millis(20));
        };

        let stream = std::net::TcpStream::connect(addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut ask = |frame: &str| -> String {
            writer.write_all(frame.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line
        };
        assert!(ask(r#"{"op":"ping"}"#).contains("\"pong\""));
        let mined = ask(r#"{"op":"mine","id":"cli","theta":1.0}"#);
        assert!(mined.contains("\"result\""), "{mined}");
        assert!(mined.contains("\"cli\""), "{mined}");
        assert!(ask(r#"{"op":"shutdown"}"#).contains("shutdown-ack"));

        let (code, out) = server.join().expect("server thread");
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("listening on"), "{out}");
        assert!(out.contains("drained clean"), "{out}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mine_rejects_bad_support() {
        let (code, out) = run_capture(&[
            "mine", "--taxonomy", "/nonexistent", "--database", "/nonexistent",
            "--support", "abc",
        ]);
        assert_eq!(code, 2);
        assert!(!out.is_empty());
    }
}
