//! **taxogram** — taxonomy-superimposed graph mining.
//!
//! A Rust implementation of *"Taxonomy-Superimposed Graph Mining"*
//! (Cakmak & Ozsoyoglu, EDBT 2008): frequent-subgraph mining for graph
//! databases whose vertex labels are concepts of an is-a taxonomy (Gene
//! Ontology annotations, product categories, atom families, …). A pattern
//! vertex labeled `l` matches any database vertex whose label is `l` or a
//! descendant of `l`; patterns with an equally-frequent specialization
//! ("over-generalized") are excluded, so the result is the complete,
//! minimal frequent pattern set.
//!
//! This crate is a facade re-exporting the workspace's public API:
//!
//! * [`Taxogram`] / [`TaxogramConfig`] — the paper's algorithm
//!   (crate `taxogram-core`);
//! * [`graph`] — labeled graphs and databases (`tsg-graph`);
//! * [`taxonomy`] — is-a DAGs with closure queries (`tsg-taxonomy`);
//! * [`gspan`] — the general-purpose gSpan miner (`tsg-gspan`);
//! * [`iso`] — exact/generalized subgraph isomorphism (`tsg-iso`);
//! * [`tacgm`] — the bottom-up comparator algorithm (`tsg-tacgm`);
//! * [`datagen`] — workload generators for every dataset in the paper's
//!   evaluation (`tsg-datagen`).
//!
//! # Example
//!
//! ```
//! use taxogram::{Taxogram, TaxogramConfig};
//! use taxogram::taxonomy::samples;
//!
//! let (concepts, taxonomy) = samples::sample_taxonomy();
//! let db = samples::figure_1_4_database(&concepts);
//! let result = Taxogram::new(TaxogramConfig::with_threshold(2.0 / 3.0))
//!     .mine(&db, &taxonomy)
//!     .unwrap();
//! for p in result.sorted_patterns() {
//!     println!("{:?} support {:.2}", p.graph.labels(), p.support);
//! }
//! ```

pub mod cli;

pub use taxogram_core::{
    mine_parallel, Enhancements, MiningResult, MiningStats, Pattern, Taxogram, TaxogramConfig,
    TaxogramError,
};

/// Labeled graphs, databases, statistics, text I/O.
pub use tsg_graph as graph;

/// Taxonomies (is-a DAGs), builders, closures, sample fixtures.
pub use tsg_taxonomy as taxonomy;

/// The gSpan frequent-subgraph miner.
pub use tsg_gspan as gspan;

/// Exact and generalized isomorphism testing.
pub use tsg_iso as iso;

/// Dense/sparse occurrence bitsets.
pub use tsg_bitset as bitset;

/// The TAcGM bottom-up baseline.
pub use tsg_tacgm as tacgm;

/// Synthetic workload generators (GO-like, KEGG-like, PTE-like, Table 1).
pub use tsg_datagen as datagen;

/// The Taxogram core internals (occurrence indices, enumeration,
/// relabeling, the brute-force reference miner).
pub use taxogram_core as core;
