//! Facade-level tests of directed taxonomy-superimposed mining — the
//! capability §2 of the paper defines but its evaluation could not
//! exercise.

use taxogram::datagen::{generate_database, generate_taxonomy, GraphGenConfig, SynthTaxonomyConfig};
use taxogram::graph::{EdgeLabel, GraphDatabase, LabeledGraph};
use taxogram::iso::{contains_subgraph, GeneralizedMatcher};
use taxogram::taxonomy::samples;
use taxogram::{Taxogram, TaxogramConfig};

#[test]
fn figure_1_2_directed_scenario() {
    let (names, taxonomy, db) = samples::go_excerpt_directed();
    let result = Taxogram::new(TaxogramConfig::with_threshold(1.0))
        .mine(&db, &taxonomy)
        .unwrap();
    assert!(!result.patterns.is_empty());
    for p in &result.patterns {
        assert!(p.graph.is_directed());
    }
    // Transporter → Helicase is conserved; the reverse arc is not.
    let transporter = names.get("transporter").unwrap();
    let helicase = names.get("helicase").unwrap();
    let arc = |a, b| {
        let mut g = LabeledGraph::with_nodes_directed([a, b]);
        g.add_edge(0, 1, EdgeLabel(0)).unwrap();
        g
    };
    assert!(result.find_isomorphic(&arc(transporter, helicase)).is_some());
    assert!(result.find_isomorphic(&arc(helicase, transporter)).is_none());
}

#[test]
fn directed_supports_recount_exactly() {
    let taxonomy = generate_taxonomy(&SynthTaxonomyConfig {
        concepts: 40,
        relationships: 48,
        depth: 4,
        seed: 21,
    });
    let db = generate_database(
        &taxonomy,
        &GraphGenConfig {
            graph_count: 25,
            max_edges: 8,
            directed: true,
            seed: 22,
            ..Default::default()
        },
    );
    assert!(db.iter().all(|(_, g)| g.is_directed()));
    let result = Taxogram::new(TaxogramConfig::with_threshold(0.3).max_edges(3))
        .mine(&db, &taxonomy)
        .unwrap();
    let matcher = GeneralizedMatcher::new(&taxonomy);
    for p in &result.patterns {
        let recount = db
            .iter()
            .filter(|(_, g)| contains_subgraph(&p.graph, g, &matcher))
            .count();
        assert_eq!(recount, p.support_count, "{:?}", p.graph.labels());
    }
}

#[test]
fn direction_never_increases_the_pattern_set() {
    // The same structural data mined directed vs undirected: every
    // directed pattern's undirected projection is frequent in the
    // undirected view, so the undirected run finds at least as many
    // support-compatible shapes. The implication only holds graph-by-graph
    // when projection is lossless, so graphs with antiparallel arcs of
    // *differing* labels (which a simple undirected graph cannot
    // represent — one label would be dropped) are filtered out first;
    // same-label antiparallel arcs collapse harmlessly.
    let taxonomy = generate_taxonomy(&SynthTaxonomyConfig {
        concepts: 30,
        relationships: 35,
        depth: 3,
        seed: 31,
    });
    let raw_db = generate_database(
        &taxonomy,
        &GraphGenConfig {
            graph_count: 20,
            max_edges: 6,
            directed: true,
            seed: 32,
            ..Default::default()
        },
    );
    let projects_losslessly = |g: &LabeledGraph| {
        g.edges().iter().all(|e1| {
            g.edges()
                .iter()
                .all(|e2| !(e1.u == e2.v && e1.v == e2.u && e1.label != e2.label))
        })
    };
    let directed_db = GraphDatabase::from_graphs(
        raw_db
            .graphs()
            .iter()
            .filter(|g| projects_losslessly(g))
            .cloned()
            .collect(),
    );
    assert!(
        directed_db.len() >= 10,
        "filter must leave enough graphs to make the comparison meaningful"
    );
    // Undirected projection of the same database.
    let undirected_db = GraphDatabase::from_graphs(
        directed_db
            .graphs()
            .iter()
            .map(|g| {
                let mut u = LabeledGraph::with_nodes(g.labels().iter().copied());
                for e in g.edges() {
                    let _ = u.add_edge(e.u, e.v, e.label);
                }
                u
            })
            .collect(),
    );
    let mine = |db: &GraphDatabase| {
        Taxogram::new(TaxogramConfig::with_threshold(0.4).max_edges(1))
            .mine(db, &taxonomy)
            .unwrap()
    };
    let dir = mine(&directed_db);
    let und = mine(&undirected_db);
    // Every directed 1-edge pattern projects onto a frequent undirected
    // edge pattern with at-least-equal support.
    let m = GeneralizedMatcher::new(&taxonomy);
    for p in &dir.patterns {
        let mut proj = LabeledGraph::with_nodes(p.graph.labels().iter().copied());
        for e in p.graph.edges() {
            let _ = proj.add_edge(e.u, e.v, e.label);
        }
        let undirected_support = undirected_db
            .iter()
            .filter(|(_, g)| contains_subgraph(&proj, g, &m))
            .count();
        assert!(
            undirected_support >= p.support_count,
            "projection cannot lose support"
        );
    }
    let _ = und;
}
