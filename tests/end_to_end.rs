//! End-to-end pipeline tests through the facade crate: every dataset
//! family of the paper's Table 1, generated small, mined, and checked
//! against first-principles invariants (frequency, minimality, and
//! support recounts via direct generalized-isomorphism tests).

use taxogram::datagen::registry::{build, DatasetId};
use taxogram::iso::{contains_subgraph, is_gen_iso, is_isomorphic, GeneralizedMatcher};
use taxogram::{Taxogram, TaxogramConfig};

const TINY: f64 = 0.01;

fn check_dataset(id: DatasetId, theta: f64, max_edges: usize) {
    let ds = build(id, TINY);
    let result = Taxogram::new(TaxogramConfig::with_threshold(theta).max_edges(max_edges))
        .mine(&ds.database, &ds.taxonomy)
        .unwrap_or_else(|e| panic!("{id:?}: {e}"));
    let minsup = ds.database.min_support_count(theta);
    let matcher = GeneralizedMatcher::new(&ds.taxonomy);

    for p in &result.patterns {
        // Structural sanity.
        assert!(p.graph.is_connected(), "{id:?}: disconnected pattern");
        assert!(p.graph.edge_count() >= 1 && p.graph.edge_count() <= max_edges);
        for &l in p.graph.labels() {
            assert!(ds.taxonomy.contains(l), "{id:?}: label outside taxonomy");
        }
        // Support recount from first principles.
        let recount = ds
            .database
            .iter()
            .filter(|(_, g)| contains_subgraph(&p.graph, g, &matcher))
            .count();
        assert_eq!(
            recount, p.support_count,
            "{id:?}: support mismatch for {:?}",
            p.graph.labels()
        );
        assert!(recount >= minsup, "{id:?}: infrequent pattern emitted");
    }

    // Minimality: no pattern generalizes an equally-supported companion.
    for p in &result.patterns {
        for q in &result.patterns {
            if std::ptr::eq(p, q)
                || p.support_count != q.support_count
                || p.graph.node_count() != q.graph.node_count()
                || p.graph.edge_count() != q.graph.edge_count()
            {
                continue;
            }
            assert!(
                !is_gen_iso(&p.graph, &q.graph, &ds.taxonomy)
                    || is_isomorphic(&p.graph, &q.graph),
                "{id:?}: over-generalized pattern {:?} survived",
                p.graph.labels()
            );
        }
    }

    // No duplicates.
    for (i, p) in result.patterns.iter().enumerate() {
        for q in &result.patterns[i + 1..] {
            assert!(
                !is_isomorphic(&p.graph, &q.graph),
                "{id:?}: duplicate pattern {:?}",
                p.graph.labels()
            );
        }
    }
}

#[test]
fn d_family_end_to_end() {
    check_dataset(DatasetId::D(1000), 0.3, 3);
}

#[test]
fn nc_family_end_to_end() {
    check_dataset(DatasetId::NC(20), 0.3, 3);
}

#[test]
fn ed_family_end_to_end() {
    check_dataset(DatasetId::ED(0.09), 0.3, 3);
}

#[test]
fn td_family_end_to_end() {
    check_dataset(DatasetId::TD(8), 0.3, 3);
}

#[test]
fn ts_family_end_to_end() {
    check_dataset(DatasetId::TS(100), 0.3, 3);
}

#[test]
fn pathway_corpus_end_to_end() {
    use taxogram::datagen::{go_like_taxonomy_scaled, pathway_database, PATHWAYS};
    let taxonomy = go_like_taxonomy_scaled(400);
    let db = pathway_database(&taxonomy, &PATHWAYS[20], 10, 7); // beta-Alanine
    let result = Taxogram::new(TaxogramConfig::with_threshold(0.3).max_edges(4))
        .mine(&db, &taxonomy)
        .unwrap();
    let matcher = GeneralizedMatcher::new(&taxonomy);
    for p in &result.patterns {
        let recount = db
            .iter()
            .filter(|(_, g)| contains_subgraph(&p.graph, g, &matcher))
            .count();
        assert_eq!(recount, p.support_count);
    }
    assert!(
        !result.patterns.is_empty(),
        "a conserved pathway must yield patterns"
    );
}

#[test]
fn pte_subset_end_to_end() {
    // Full PTE is 416 graphs; a 40-molecule slice keeps the recount oracle
    // affordable while exercising the real atom taxonomy.
    let pte = taxogram::datagen::pte_like_dataset(2008);
    let db = taxogram::graph::GraphDatabase::from_graphs(
        pte.database.graphs()[..40].to_vec(),
    );
    let result = Taxogram::new(TaxogramConfig::with_threshold(0.5).max_edges(2))
        .mine(&db, &pte.taxonomy)
        .unwrap();
    assert!(!result.patterns.is_empty(), "C/H/O fragments abound");
    let matcher = GeneralizedMatcher::new(&pte.taxonomy);
    for p in &result.patterns {
        let recount = db
            .iter()
            .filter(|(_, g)| contains_subgraph(&p.graph, g, &matcher))
            .count();
        assert_eq!(recount, p.support_count);
    }
}

#[test]
fn taxogram_and_tacgm_agree_on_registry_data() {
    let ds = build(DatasetId::TS(25), TINY);
    let theta = 0.4;
    let tax = Taxogram::new(TaxogramConfig::with_threshold(theta).max_edges(3))
        .mine(&ds.database, &ds.taxonomy)
        .unwrap();
    let tac = taxogram::tacgm::mine(
        &ds.database,
        &ds.taxonomy,
        &taxogram::tacgm::TacgmConfig::with_threshold(theta).max_edges(3),
    )
    .unwrap();
    assert_eq!(tax.patterns.len(), tac.patterns.len());
    for p in &tax.patterns {
        let hit = tac
            .patterns
            .iter()
            .find(|q| is_isomorphic(&p.graph, &q.graph))
            .unwrap_or_else(|| panic!("tacgm missing {:?}", p.graph.labels()));
        assert_eq!(p.support_count, hit.support_count);
    }
}
