//! The paper's definitions, lemmas, and worked examples, executed as
//! tests through the facade crate.

use proptest::prelude::*;
use taxogram::graph::{EdgeLabel, GraphDatabase, LabeledGraph, NodeLabel};
use taxogram::iso::{
    contains_subgraph, count_embeddings, is_gen_iso, support_count, GeneralizedMatcher,
};
use taxogram::taxonomy::{samples, taxonomy_from_edges, Taxonomy, TaxonomyBuilder};
use taxogram::{Taxogram, TaxogramConfig};

fn edge(labels: (u32, u32)) -> LabeledGraph {
    let mut g = LabeledGraph::with_nodes([NodeLabel(labels.0), NodeLabel(labels.1)]);
    g.add_edge(0, 1, EdgeLabel(0)).unwrap();
    g
}

/// §2, taxonomy definition: ancestorship is reflexive and transitive.
#[test]
fn ancestorship_is_reflexive_and_transitive() {
    let (c, t) = samples::sample_taxonomy();
    for l in t.concepts() {
        assert!(t.is_ancestor(l, l), "every label is an ancestor of itself");
    }
    // a > b > d: transitivity.
    assert!(t.is_ancestor(c.a, c.b));
    assert!(t.is_ancestor(c.b, c.d));
    assert!(t.is_ancestor(c.a, c.d));
}

/// Remark 2.1(a): IS_GEN_ISO is not commutative.
#[test]
fn gen_iso_is_not_commutative() {
    let t = taxonomy_from_edges(2, [(1, 0)]).unwrap();
    let general = edge((0, 0));
    let specific = edge((1, 1));
    assert!(is_gen_iso(&general, &specific, &t));
    assert!(!is_gen_iso(&specific, &general, &t));
}

/// Remark 2.1(b): IS_GEN_ISO is transitive.
#[test]
fn gen_iso_is_transitive() {
    let t = taxonomy_from_edges(3, [(1, 0), (2, 1)]).unwrap();
    let top = edge((0, 0));
    let mid = edge((1, 1));
    let bottom = edge((2, 2));
    assert!(is_gen_iso(&top, &mid, &t));
    assert!(is_gen_iso(&mid, &bottom, &t));
    assert!(is_gen_iso(&top, &bottom, &t), "transitivity");
}

/// Lemma 2: the support set of a pattern is contained in the support set
/// of each of its generalizations (tested via support counts on random
/// inputs plus explicit set containment on the fixture).
#[test]
fn lemma_2_support_antitone_on_fixture() {
    let (c, t) = samples::sample_taxonomy();
    let db = samples::figure_1_4_database(&c);
    let m = GeneralizedMatcher::new(&t);
    let general = edge((c.a.0, c.a.0));
    let special = edge((c.b.0, c.a.0));
    // Every graph containing the specialization contains the general one.
    for (_, g) in db.iter() {
        if contains_subgraph(&special, g, &m) {
            assert!(contains_subgraph(&general, g, &m));
        }
    }
    assert!(support_count(&special, &db, &m) <= support_count(&general, &db, &m));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lemma 2, property form: generalizing one position never lowers
    /// support.
    #[test]
    fn lemma_2_property(
        labels in prop::collection::vec(0u32..5, 2..4),
        dbseed in 0u64..1000,
    ) {
        // Chain taxonomy 0 > 1 > 2 > 3 > 4.
        let t = taxonomy_from_edges(5, [(1, 0), (2, 1), (3, 2), (4, 3)]).unwrap();
        // Simple random database: paths over the 5 labels.
        let mut db = GraphDatabase::new();
        let mut x = dbseed;
        for _ in 0..4 {
            let mut ls = vec![];
            for _ in 0..3 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ls.push(((x >> 33) % 5) as u32);
            }
            let mut g = LabeledGraph::with_nodes(ls.iter().map(|&l| NodeLabel(l)));
            g.add_edge(0, 1, EdgeLabel(0)).unwrap();
            g.add_edge(1, 2, EdgeLabel(0)).unwrap();
            db.push(g);
        }
        let m = GeneralizedMatcher::new(&t);
        // The pattern from the drawn labels, and its generalization at
        // position 0 (replace with a strict ancestor if one exists).
        let mut p = LabeledGraph::with_nodes(labels.iter().map(|&l| NodeLabel(l)));
        for i in 1..p.node_count() {
            p.add_edge(i - 1, i, EdgeLabel(0)).unwrap();
        }
        if labels[0] > 0 {
            let mut gen = p.clone();
            gen.set_label(0, NodeLabel(labels[0] - 1));
            prop_assert!(
                support_count(&p, &db, &m) <= support_count(&gen, &db, &m),
                "generalization lowered support"
            );
        }
    }
}

/// Lemma 3 / Example 2.8: the downward-closure property does NOT hold
/// along the generalization axis — an over-generalized pattern can have a
/// non-over-generalized generalization. Constructed witness:
/// labels 0 > 1 > 2 (chain); database {2—2, 1—1}.
/// * `1—1` has support 2? No: 1—1 matches 2—2 (desc) and 1—1 → support 2.
/// * So pick: database {2—2, 2—2, 1—1}: pattern 2—2 support 2; pattern
///   1—1 support 3 (not over-generalized, support strictly above 2—2);
///   pattern 0—0 support 3 — over-generalized by 1—1. Meanwhile 1—1 is a
///   generalization of 2—2 and not over-generalized. The mining result
///   must contain 2—2 and 1—1 but not 0—0.
#[test]
fn lemma_3_no_downward_closure_of_usefulness() {
    let t = taxonomy_from_edges(3, [(1, 0), (2, 1)]).unwrap();
    let db = GraphDatabase::from_graphs(vec![edge((2, 2)), edge((2, 2)), edge((1, 1))]);
    let r = Taxogram::new(TaxogramConfig::with_threshold(0.5))
        .mine(&db, &t)
        .unwrap();
    let has = |g: &LabeledGraph| r.find_isomorphic(g).is_some();
    assert!(has(&edge((2, 2))), "2—2 kept (support 2)");
    assert!(has(&edge((1, 1))), "1—1 kept (support 3 > 2—2's)");
    assert!(!has(&edge((0, 0))), "0—0 over-generalized by 1—1");
}

/// Lemma 6: relabeling preserves pattern-class counts. On a single-rooted
/// taxonomy, the classes found by gSpan on `D_mg` equal the classes
/// represented in the final pattern set.
#[test]
fn lemma_6_class_counts_match() {
    let (c, t) = samples::sample_taxonomy();
    let db = samples::figure_1_4_database(&c);
    let theta = 1.0 / 3.0;
    let r = Taxogram::new(TaxogramConfig::with_threshold(theta))
        .mine(&db, &t)
        .unwrap();
    // Class of a pattern: its skeleton relabeled to most-general
    // ancestors; count distinct classes up to isomorphism.
    let mut class_reps: Vec<LabeledGraph> = Vec::new();
    for p in &r.patterns {
        let mut rep = p.graph.clone();
        for v in 0..rep.node_count() {
            rep.set_label(v, t.most_general_ancestor(rep.label(v)).unwrap());
        }
        if !class_reps.iter().any(|g| taxogram::iso::is_isomorphic(g, &rep)) {
            class_reps.push(rep);
        }
    }
    assert_eq!(
        class_reps.len(),
        r.stats.classes,
        "every mined class contributes at least one (its deepest) pattern, \
         and no pattern's class is unmined"
    );
}

/// Example 2.6 analog (GB vs GD): a pattern whose specialization has the
/// same support is over-generalized and must be excluded.
#[test]
fn over_generalized_pattern_excluded() {
    // Taxonomy: 0 > 1; database: two copies of 1—1.
    let t = taxonomy_from_edges(2, [(1, 0)]).unwrap();
    let db = GraphDatabase::from_graphs(vec![edge((1, 1)), edge((1, 1))]);
    let r = Taxogram::new(TaxogramConfig::with_threshold(1.0))
        .mine(&db, &t)
        .unwrap();
    assert_eq!(r.patterns.len(), 1);
    assert_eq!(r.patterns[0].graph.labels(), &[NodeLabel(1), NodeLabel(1)]);
    // Under the baseline (no contraction), the suppression is visible in
    // the over-generalization counter; with enhancement (d) on, the
    // equal-set labels never even enter the enumeration.
    let base = Taxogram::new(TaxogramConfig::baseline(1.0)).mine(&db, &t).unwrap();
    assert_eq!(base.patterns.len(), 1);
    assert!(base.stats.enumeration.overgeneralized >= 1, "0—0 flagged over-generalized");
}

/// §3 Step 1: multi-root taxonomies with shared descendants get an
/// artificial common ancestor, and mining still works end to end.
#[test]
fn multi_root_step1_round_trip() {
    let mut b = TaxonomyBuilder::with_concepts(4);
    // Roots 0, 1; concept 2 under both; concept 3 under 2.
    b.is_a(NodeLabel(2), NodeLabel(0)).unwrap();
    b.is_a(NodeLabel(2), NodeLabel(1)).unwrap();
    b.is_a(NodeLabel(3), NodeLabel(2)).unwrap();
    let t: Taxonomy = b.build().unwrap();
    let db = GraphDatabase::from_graphs(vec![edge((3, 3)), edge((2, 3))]);
    let r = Taxogram::new(TaxogramConfig::with_threshold(1.0))
        .mine(&db, &t)
        .unwrap();
    assert!(!r.patterns.is_empty());
    for p in &r.patterns {
        for &l in p.graph.labels() {
            assert!(l.index() < 4, "artificial labels never emitted");
        }
    }
    // 2—2 generalizes both graphs but is over-generalized by 2—3 (also
    // support 2: in 3—3 both endpoints specialize 2 and 3; in 2—3
    // verbatim). The minimal survivor is 2—3.
    assert!(r.find_isomorphic(&edge((2, 2))).is_none());
    assert!(r.find_isomorphic(&edge((2, 3))).is_some());
}

/// The support definition counts graphs, not occurrences (§2 note after
/// the support definition).
#[test]
fn support_counts_graphs_not_occurrences() {
    let t = taxonomy_from_edges(2, [(1, 0)]).unwrap();
    // One graph with many 1—1 edges, one with a single 1—1 edge.
    let mut big = LabeledGraph::with_nodes(vec![NodeLabel(1); 4]);
    big.add_edge(0, 1, EdgeLabel(0)).unwrap();
    big.add_edge(1, 2, EdgeLabel(0)).unwrap();
    big.add_edge(2, 3, EdgeLabel(0)).unwrap();
    let db = GraphDatabase::from_graphs(vec![big.clone(), edge((1, 1))]);
    let m = GeneralizedMatcher::new(&t);
    let p = edge((1, 1));
    assert!(count_embeddings(&p, &big, &m) > 1, "multiple occurrences in one graph");
    let r = Taxogram::new(TaxogramConfig::with_threshold(1.0))
        .mine(&db, &t)
        .unwrap();
    let found = r.find_isomorphic(&p).expect("1—1 found");
    assert_eq!(found.support_count, 2, "per-graph, not per-occurrence");
}
